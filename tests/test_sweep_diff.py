"""Tests for cross-campaign diffing and the ``sweep diff`` regression gate."""

import json
import math

import pytest

from repro.campaign import (
    ToleranceError,
    diff_documents,
    diff_table,
    parse_tolerances,
)
from repro.cli import main


def record(cell_id, status="ok", **metrics):
    base = {
        "cell_id": cell_id,
        "status": status,
        "max_footprint": 100,
        "cost_ratio": 2.0,
        "total_moves": 10,
    }
    base.update(metrics)
    return base


def document(name, records):
    return {
        "format": "repro-campaign-results",
        "campaign": name,
        "seed": 1,
        "records": records,
    }


# ---------------------------------------------------------------- tolerances
def test_parse_tolerances():
    assert parse_tolerances([]) == {}
    assert parse_tolerances(["cost_ratio=2.5", "total_moves=0"]) == {
        "cost_ratio": 2.5,
        "total_moves": 0.0,
    }
    assert math.isinf(parse_tolerances(["cost_ratio=inf"])["cost_ratio"])
    with pytest.raises(ToleranceError, match="must look like metric=pct"):
        parse_tolerances(["cost_ratio"])
    with pytest.raises(ToleranceError, match="unknown diff metric"):
        parse_tolerances(["no_such_metric=1"])
    with pytest.raises(ToleranceError, match="could not convert"):
        parse_tolerances(["cost_ratio=abc"])
    with pytest.raises(ToleranceError, match="non-negative"):
        parse_tolerances(["cost_ratio=-1"])


# --------------------------------------------------------------- diff logic
def test_identical_documents_have_no_changes():
    doc = document("a", [record("x"), record("y")])
    diff = diff_documents(doc, doc)
    assert diff.compared_cells == 2
    assert diff.identical_cells == 2
    assert not diff.changes and not diff.regressions
    assert diff.gate_failures == 0


def test_increase_is_a_regression_and_decrease_is_not():
    base = document("a", [record("x", cost_ratio=2.0)])
    worse = document("b", [record("x", cost_ratio=2.2)])
    better = document("b", [record("x", cost_ratio=1.8)])
    diff = diff_documents(base, worse)
    assert [d.metric for d in diff.regressions] == ["cost_ratio"]
    assert diff.regressions[0].pct == pytest.approx(10.0)
    diff = diff_documents(base, better)
    assert diff.changes and not diff.regressions


def test_tolerance_allows_bounded_increase():
    base = document("a", [record("x", cost_ratio=2.0)])
    cand = document("b", [record("x", cost_ratio=2.02)])  # +1%
    assert diff_documents(base, cand).regressions  # default tolerance is 0%
    assert not diff_documents(base, cand, tolerances={"cost_ratio": 2.0}).regressions
    assert diff_documents(base, cand, tolerances={"cost_ratio": 0.5}).regressions


def test_zero_baseline_any_increase_is_a_regression():
    base = document("a", [record("x", total_moves=0)])
    cand = document("b", [record("x", total_moves=1)])
    diff = diff_documents(base, cand)
    assert len(diff.regressions) == 1
    assert math.isinf(diff.regressions[0].pct)
    # A finite percentage tolerance cannot absolve a zero baseline...
    assert diff_documents(base, cand, tolerances={"total_moves": 1000.0}).regressions
    # ...only an explicitly infinite one can.
    assert not diff_documents(base, cand, tolerances={"total_moves": math.inf}).regressions


def test_disjoint_cell_sets_are_called_out():
    base = document("a", [record("x"), record("y")])
    cand = document("b", [record("y"), record("z")])
    diff = diff_documents(base, cand)
    assert diff.missing_cells == ["x"]
    assert diff.extra_cells == ["z"]
    assert diff.compared_cells == 1
    # A lost cell fails the gate; a new cell does not.
    assert diff.gate_failures == 1


def test_error_status_transitions():
    base = document(
        "a",
        [record("ok-both"), record("breaks"), record("fixed", status="error"), record("err-both", status="error")],
    )
    cand = document(
        "b",
        [record("ok-both"), record("breaks", status="error"), record("fixed"), record("err-both", status="error")],
    )
    diff = diff_documents(base, cand)
    assert diff.new_errors == ["breaks"]
    assert diff.fixed_errors == ["fixed"]
    assert diff.both_errors == ["err-both"]
    assert diff.compared_cells == 1  # only ok-both has comparable metrics
    assert diff.gate_failures == 1  # the new error


def test_missing_metric_on_one_side_is_not_compared():
    base = document("a", [record("x", device_elapsed_ms=5.0)])
    cand = document("b", [record("x")])  # no device column (device "none")
    diff = diff_documents(base, cand)
    assert not diff.changes


def test_diff_table_renders_verdicts_and_notes():
    base = document("a", [record("x", cost_ratio=2.0, total_moves=0), record("gone")])
    cand = document("b", [record("x", cost_ratio=2.5, total_moves=0)])
    table = diff_table(diff_documents(base, cand))
    text = table.to_text()
    assert "REGRESSION" in text
    assert "+25.00%" in text
    assert any("missing from candidate" in note for note in table.notes)


# --------------------------------------------------------------------- CLI
def write_results_file(tmp_path, name, records):
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(document(name, records)), encoding="utf-8")
    return path


def test_cli_diff_identical_exits_zero(tmp_path, capsys):
    a = write_results_file(tmp_path, "a", [record("x")])
    b = write_results_file(tmp_path, "b", [record("x")])
    assert main(["sweep", "diff", str(a), str(b), "--fail-on-regression"]) == 0
    assert "0 regression(s)" in capsys.readouterr().out


def test_cli_diff_regression_gates_only_with_the_flag(tmp_path, capsys):
    a = write_results_file(tmp_path, "a", [record("x", cost_ratio=2.0)])
    b = write_results_file(tmp_path, "b", [record("x", cost_ratio=3.0)])
    # Informational by default.
    assert main(["sweep", "diff", str(a), str(b)]) == 0
    capsys.readouterr()
    assert main(["sweep", "diff", str(a), str(b), "--fail-on-regression"]) == 1
    captured = capsys.readouterr()
    assert "gate FAILED" in captured.err
    assert "REGRESSION" in captured.out
    # Tolerance wide enough to absorb the delta passes the gate.
    assert (
        main(
            [
                "sweep",
                "diff",
                str(a),
                str(b),
                "--tolerance",
                "cost_ratio=60",
                "--fail-on-regression",
            ]
        )
        == 0
    )


def test_cli_diff_missing_cell_fails_the_gate(tmp_path, capsys):
    a = write_results_file(tmp_path, "a", [record("x"), record("y")])
    b = write_results_file(tmp_path, "b", [record("x")])
    assert main(["sweep", "diff", str(a), str(b), "--fail-on-regression"]) == 1
    assert "1 missing cell(s)" in capsys.readouterr().err


def test_cli_diff_bad_arguments(tmp_path, capsys):
    a = write_results_file(tmp_path, "a", [record("x")])
    assert main(["sweep", "diff", str(a)]) == 2
    assert "usage" in capsys.readouterr().err
    assert main(["sweep", "diff", str(a), str(tmp_path / "nope.json")]) == 2
    assert "cannot load" in capsys.readouterr().err
    assert main(["sweep", "diff", str(a), str(a), "--tolerance", "bogus"]) == 2
    assert "must look like metric=pct" in capsys.readouterr().err


def test_cli_diff_rejects_corrupt_artifacts(tmp_path, capsys):
    a = write_results_file(tmp_path, "a", [record("x")])
    truncated = tmp_path / "trunc.json"
    truncated.write_text(json.dumps(document("b", [record("x")]))[:40], encoding="utf-8")
    assert main(["sweep", "diff", str(a), str(truncated)]) == 2
    assert "truncated or corrupt" in capsys.readouterr().err


def test_cli_diff_accepts_artifact_directories(tmp_path, capsys):
    spec = {
        "name": "dd",
        "seed": 2,
        "workloads": [{"kind": "churn", "requests": 100, "target_live": 15}],
        "allocators": ["first_fit"],
        "costs": ["linear"],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec), encoding="utf-8")
    out = tmp_path / "out"
    assert main(["sweep", str(spec_path), "--out", str(out), "--quiet"]) == 0
    capsys.readouterr()
    assert main(["sweep", "diff", str(out), str(out), "--fail-on-regression"]) == 0
    assert "no metric differs" in capsys.readouterr().out
