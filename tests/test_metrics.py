"""Tests for metric collection, reporting, and the analytic bound helpers."""

import pytest

from repro.analysis import (
    memory_allocation_lower_bound,
    predicted_checkpoints_per_flush,
    predicted_cost_ratio,
    predicted_footprint_ratio,
    predicted_worst_case_moved_volume,
)
from repro.allocators import FirstFitAllocator
from repro.core import CostObliviousReallocator
from repro.core.stats import AllocatorStats
from repro.costs import ConstantCost, LinearCost
from repro.metrics import (
    ascii_table,
    cost_competitive_ratio,
    footprint_competitive_ratio,
    render_series,
    run_trace,
)
from repro.workloads import churn_trace


def test_run_trace_collects_consistent_metrics():
    trace = churn_trace(800, seed=21, target_live=80)
    allocator = CostObliviousReallocator(epsilon=0.25)
    metrics = run_trace(allocator, trace, cost_functions=(LinearCost(), ConstantCost()),
                        sample_every=50)
    assert metrics.requests == len(trace)
    assert metrics.final_volume == allocator.volume
    assert metrics.max_footprint_ratio <= 1.25 + 1e-9
    assert metrics.total_moves == allocator.stats.total_moves
    assert set(metrics.cost_ratios) == {"linear", "constant"}
    assert len(metrics.footprint_series) == len(metrics.volume_series) > 0
    assert metrics.requests_per_second > 0
    row = metrics.summary_row(["linear", "constant"])
    assert row[0] == allocator.describe()


def test_run_trace_on_non_moving_allocator_reports_zero_moves():
    trace = churn_trace(400, seed=22)
    metrics = run_trace(FirstFitAllocator(), trace, cost_functions=(LinearCost(),))
    assert metrics.total_moves == 0
    assert metrics.cost_ratios["linear"] == 0.0


def test_footprint_competitive_ratio_helper():
    assert footprint_competitive_ratio([10, 20, 30], [10, 10, 20]) == pytest.approx(2.0)
    assert footprint_competitive_ratio([5], [0]) == 0.0
    with pytest.raises(ValueError):
        footprint_competitive_ratio([1, 2], [1])


def test_cost_competitive_ratio_uses_histograms():
    stats = AllocatorStats()
    stats.record_allocation(10)
    stats.record_allocation(10)
    stats.record_move(10)
    assert cost_competitive_ratio(stats, LinearCost()) == pytest.approx(0.5)
    assert cost_competitive_ratio(stats, ConstantCost()) == pytest.approx(0.5)
    assert AllocatorStats().cost_ratio(LinearCost()) == 0.0


def test_stats_track_worst_request_and_footprint():
    stats = AllocatorStats()
    stats.record_footprint(150, 100)
    stats.record_footprint(90, 100)
    stats.record_transient_footprint(500)
    assert stats.max_footprint == 150
    assert stats.max_footprint_ratio == pytest.approx(1.5)
    assert stats.max_transient_footprint == 500


def test_ascii_table_renders_all_rows_and_headers():
    table = ascii_table(["name", "value"], [["a", 1], ["bb", 2.5]], title="T")
    assert "T" in table
    assert "| name | value |" in table
    assert "| bb   | 2.5   |" in table
    assert table.count("+") >= 8


def test_render_series_handles_edge_cases():
    assert render_series([]) == "(empty series)"
    chart = render_series([1, 5, 9, 5, 1], width=10, height=4, label="demo")
    assert "demo" in chart
    assert "#" in chart
    long_chart = render_series(list(range(500)), width=40, height=5)
    assert max(len(line) for line in long_chart.splitlines()[1:]) <= 40


def test_analytic_bound_helpers():
    assert predicted_footprint_ratio(0.25) == 1.25
    assert predicted_cost_ratio(0.25) == pytest.approx(8.0)
    assert predicted_cost_ratio(0.5) == pytest.approx(2.0)
    assert predicted_checkpoints_per_flush(0.25) == 4.0
    assert predicted_worst_case_moved_volume(0.25, 10, 100) == pytest.approx(260.0)
    assert memory_allocation_lower_bound(1024, 2**20) == pytest.approx(10.0)
    for helper in (predicted_footprint_ratio, predicted_cost_ratio,
                   predicted_checkpoints_per_flush):
        with pytest.raises(ValueError):
            helper(0.9)
    with pytest.raises(ValueError):
        memory_allocation_lower_bound(0, 2)
