"""Tests for the Section 3.2 checkpointed reallocator."""

import random

import pytest

from repro.core import CheckpointedReallocator, check_invariants
from repro.storage import BlockTranslationLayer
from tests.conftest import random_churn


def test_moves_never_overlap_their_source():
    """The non-overlapping constraint of Section 3: every relocation targets
    addresses disjoint from the object's previous location."""
    realloc = CheckpointedReallocator(epsilon=0.5, trace=True)
    random_churn(realloc, steps=800, seed=1, max_size=100)
    for record in realloc.history:
        for move in record.moves:
            if move.is_reallocation:
                assert not move.source.overlaps(move.destination)


def test_no_write_ever_lands_on_frozen_space():
    realloc = CheckpointedReallocator(epsilon=0.25)
    random_churn(realloc, steps=1200, seed=2, max_size=80)
    assert realloc.checkpoints.violations == 0


def test_checkpoints_per_request_stay_bounded():
    """Lemma 3.3: a flush needs O(1/eps) checkpoints.  With eps = 0.5 the
    constant works out to a few dozen at most; assert a generous cap that
    would still catch an O(n) regression."""
    realloc = CheckpointedReallocator(epsilon=0.5)
    random_churn(realloc, steps=1500, seed=3, max_size=64)
    assert realloc.stats.max_request_checkpoints <= 40
    assert realloc.stats.flushes > 0


@pytest.mark.parametrize("epsilon", [0.5, 0.25])
def test_footprint_bound_matches_amortized_variant(epsilon):
    realloc = CheckpointedReallocator(epsilon=epsilon)
    random_churn(realloc, steps=1200, seed=4, max_size=64)
    assert realloc.stats.max_footprint_ratio <= 1 + epsilon + 1e-9
    check_invariants(realloc)


def test_transient_footprint_includes_additive_delta_only():
    """Lemma 3.1: during a flush the space is (1+O(eps))V + O(Delta)."""
    realloc = CheckpointedReallocator(epsilon=0.25)
    rng = random.Random(5)
    live = {}
    next_id = 0
    peak_volume = 0
    for _ in range(1200):
        if live and rng.random() < 0.45:
            name = rng.choice(list(live))
            realloc.delete(name)
            del live[name]
        else:
            next_id += 1
            size = rng.randint(1, 256)
            realloc.insert(next_id, size)
            live[next_id] = size
        peak_volume = max(peak_volume, realloc.volume)
    bound = (1 + 3 * 0.25) * peak_volume + 2 * realloc.delta
    assert realloc.stats.max_transient_footprint <= bound


def test_flush_records_carry_checkpoint_counts():
    realloc = CheckpointedReallocator(epsilon=0.5, trace=True)
    random_churn(realloc, steps=600, seed=6)
    flush_records = [r.flush for r in realloc.history if r.flush is not None]
    assert flush_records, "expected at least one flush"
    assert all(f.checkpoints >= 1 for f in flush_records)


def test_translation_layer_tracks_every_live_object():
    realloc = CheckpointedReallocator(epsilon=0.5)
    live = random_churn(realloc, steps=700, seed=7)
    assert set(realloc.translation) == set(live)
    for name in live:
        assert realloc.translation.lookup(name) == realloc.space.extent_of(name)


def test_crash_recovery_after_every_checkpoint_is_consistent():
    realloc = CheckpointedReallocator(epsilon=0.5, track_recovery=True)
    rng = random.Random(8)
    live = {}
    next_id = 0
    for step in range(400):
        if live and rng.random() < 0.45:
            name = rng.choice(list(live))
            realloc.delete(name)
            del live[name]
        else:
            next_id += 1
            size = rng.randint(1, 64)
            realloc.insert(next_id, size)
            live[next_id] = size
        if step % 50 == 49:
            realloc.checkpoint()
            # Durable data must be reachable no matter when we crash.
            realloc.crash_and_recover()


def test_shared_translation_layer_can_be_injected():
    layer = BlockTranslationLayer()
    realloc = CheckpointedReallocator(epsilon=0.5, translation=layer)
    realloc.insert("a", 8)
    assert "a" in layer
    assert realloc.checkpoints is layer.checkpoints


def test_system_initiated_checkpoints_are_counted():
    realloc = CheckpointedReallocator(epsilon=0.5)
    realloc.insert("a", 8)
    before = realloc.stats.checkpoints
    realloc.checkpoint()
    realloc.checkpoint()
    assert realloc.stats.checkpoints == before + 2
