"""Unit and property-based tests for the cost-function library.

The key property is membership in the paper's class ``F_sa``: every cost
function shipped here must be monotonically increasing and subadditive,
because the reallocators' guarantees are stated only for that class.
"""

import pytest
from hypothesis import given, strategies as st

from repro.costs import (
    STANDARD_COST_SUITE,
    AffineCost,
    BlockCost,
    CappedLinearCost,
    ConstantCost,
    CostFunctionError,
    LinearCost,
    LogCost,
    MainMemoryCost,
    MinCost,
    NetworkedStoreCost,
    PiecewiseLinearConcaveCost,
    PowerCost,
    RotatingDiskCost,
    ScaledCost,
    SolidStateCost,
    SumCost,
    TabulatedCost,
    is_monotone,
    is_subadditive,
    validate_cost_function,
)

ALL_COST_FUNCTIONS = list(STANDARD_COST_SUITE) + [
    BlockCost(block=16),
    NetworkedStoreCost(),
    PiecewiseLinearConcaveCost([(4, 8.0), (64, 40.0), (256, 80.0)]),
    ScaledCost(LinearCost(), 2.5),
    SumCost([ConstantCost(3.0), LinearCost(0.5)]),
    MinCost([LinearCost(), ConstantCost(100.0)]),
    TabulatedCost({1: 1.0, 2: 1.5, 4: 2.0, 8: 3.0, 16: 4.0}),
]


@pytest.mark.parametrize("cost", ALL_COST_FUNCTIONS, ids=lambda c: c.name)
def test_every_shipped_cost_function_is_in_F_sa(cost):
    validate_cost_function(cost, max_size=128)


@pytest.mark.parametrize("cost", ALL_COST_FUNCTIONS, ids=lambda c: c.name)
def test_costs_are_positive_and_reject_nonpositive_sizes(cost):
    assert cost(1) > 0
    assert cost(100) > 0
    with pytest.raises(ValueError):
        cost(0)
    with pytest.raises(ValueError):
        cost(-3)


def test_linear_and_constant_extremes():
    linear = LinearCost()
    constant = ConstantCost()
    assert linear(7) == 7
    assert constant(7) == 1
    assert linear.total([1, 2, 3]) == 6
    assert constant.total([1, 2, 3]) == 3


def test_affine_matches_seek_plus_transfer():
    disk = AffineCost(fixed=8.0, per_unit=0.5)
    assert disk(10) == pytest.approx(13.0)
    assert RotatingDiskCost(seek_ms=8.0, units_per_ms=2.0)(10) == pytest.approx(13.0)


def test_block_and_ssd_costs_round_up_to_pages():
    block = BlockCost(block=8, per_block=2.0)
    assert block(1) == 2.0
    assert block(8) == 2.0
    assert block(9) == 4.0
    ssd = SolidStateCost(page_size=8, page_cost=1.0, issue_cost=0.0)
    assert ssd(16) == pytest.approx(2.0)


def test_invalid_parameters_raise():
    with pytest.raises(CostFunctionError):
        LinearCost(0)
    with pytest.raises(CostFunctionError):
        PowerCost(exponent=1.5)
    with pytest.raises(CostFunctionError):
        CappedLinearCost(cap=0)
    with pytest.raises(CostFunctionError):
        SumCost([])
    with pytest.raises(CostFunctionError):
        ScaledCost(LinearCost(), -1)
    with pytest.raises(CostFunctionError):
        TabulatedCost({})


def test_piecewise_requires_concavity():
    with pytest.raises(CostFunctionError):
        PiecewiseLinearConcaveCost([(1, 1.0), (2, 10.0)])  # convex jump
    ok = PiecewiseLinearConcaveCost([(2, 4.0), (10, 10.0)])
    assert ok(1) == pytest.approx(2.0)
    assert ok(6) == pytest.approx(7.0)
    assert ok(20) == pytest.approx(17.5)


def test_tabulated_rejects_non_subadditive_measurements():
    with pytest.raises(CostFunctionError):
        TabulatedCost({1: 1.0, 100: 1000.0})


def test_checker_helpers_detect_violations():
    class Bad(LinearCost):
        name = "bad"

        def cost(self, size):
            return size * size  # superadditive

    sizes = list(range(1, 40))
    assert is_monotone(Bad(), sizes)
    assert not is_subadditive(Bad(), sizes)
    assert is_subadditive(LogCost(), sizes)
    assert is_monotone(MainMemoryCost(), sizes)


@pytest.mark.parametrize(
    "cost",
    [LinearCost(), ConstantCost(), AffineCost(2, 1), PowerCost(0.5), LogCost(),
     CappedLinearCost(64), RotatingDiskCost(), SolidStateCost(), BlockCost(16)],
    ids=lambda c: c.name,
)
@given(x=st.integers(1, 2000), y=st.integers(1, 2000))
def test_subadditivity_property(cost, x, y):
    assert cost(x + y) <= cost(x) + cost(y) + 1e-9


@pytest.mark.parametrize(
    "cost",
    [LinearCost(), PowerCost(0.7), LogCost(), RotatingDiskCost(), NetworkedStoreCost()],
    ids=lambda c: c.name,
)
@given(x=st.integers(1, 5000))
def test_monotonicity_property(cost, x):
    assert cost(x + 1) >= cost(x) - 1e-9
