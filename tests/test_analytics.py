"""Streaming analytics equivalence: the one-pass observer must reproduce the
pre-PR materialised ``analyze_trace`` byte for byte.

``_materialized_analyze`` below is a verbatim re-implementation of the
pre-streaming code (whole-trace lists, sorted copies, full name set) used as
the oracle: every statistic the streaming observer emits — on any format,
materialised or streamed, seeded or hypothesis-generated — must match it
exactly, including the rendered terminal tables.
"""

from dataclasses import asdict

import gzip

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign import TraceAnalyticsObserver, analytics_result, analyze_trace
from repro.cli import main
from repro.engine import SimulationEngine, size_histogram
from repro.engine.analytics import TraceAnalytics, _NameSet
from repro.workloads import (
    Request,
    Trace,
    TraceFileSource,
    UniformSizes,
    churn_trace,
    load_trace,
    save_trace,
)


# --------------------------------------------------------------- seed oracle
def _materialized_analyze(trace, death_buckets=10):
    """The pre-streaming implementation, kept verbatim as the oracle."""

    def percentile(sorted_values, fraction):
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
        return sorted_values[index]

    def histogram(sizes):
        buckets = {}
        for size in sizes:
            exponent = max(0, size.bit_length() - 1)
            bucket = buckets.setdefault(
                exponent,
                {"low": 1 << exponent, "high": (1 << (exponent + 1)) - 1, "count": 0, "volume": 0},
            )
            bucket["count"] += 1
            bucket["volume"] += size
        return [buckets[exponent] for exponent in sorted(buckets)]

    births = {}
    birth_sizes = {}
    lifetimes = []
    deaths = [{"bucket": index, "objects": 0, "volume": 0} for index in range(death_buckets)]
    total = max(1, len(trace))
    volume = 0
    volume_sum = 0.0
    peak = 0
    sizes = []
    seen_names = set()
    for index, request in enumerate(trace):
        if request.is_insert:
            seen_names.add(request.name)
            births[request.name] = index
            birth_sizes[request.name] = request.size
            sizes.append(request.size)
            volume += request.size
        else:
            born = births.pop(request.name)
            size = birth_sizes.pop(request.name)
            lifetimes.append(index - born)
            bucket = min(death_buckets - 1, (index * death_buckets) // total)
            deaths[bucket]["objects"] += 1
            deaths[bucket]["volume"] += size
            volume -= size
        peak = max(peak, volume)
        volume_sum += volume
    immortal_volume = sum(birth_sizes.values())
    censored = [len(trace) - born for born in births.values()]
    all_lifetimes = sorted(lifetimes + censored)
    sorted_sizes = sorted(sizes)
    inserted_volume = sum(sizes)
    for bucket in deaths:
        bucket["volume_fraction"] = round(bucket["volume"] / max(1, inserted_volume), 4)
    return TraceAnalytics(
        label=trace.label,
        requests=len(trace),
        inserts=len(sizes),
        deletes=len(lifetimes),
        distinct_objects=len(seen_names),
        delta=max(sorted_sizes, default=0),
        inserted_volume=inserted_volume,
        peak_volume=peak,
        mean_volume=round(volume_sum / total, 2),
        final_volume=volume,
        turnover=round(inserted_volume / max(1, peak), 3),
        sizes={
            "p50": percentile(sorted_sizes, 0.50),
            "p90": percentile(sorted_sizes, 0.90),
            "p99": percentile(sorted_sizes, 0.99),
            "max": float(sorted_sizes[-1]) if sorted_sizes else 0.0,
        },
        lifetimes={
            "p50": percentile(all_lifetimes, 0.50),
            "p90": percentile(all_lifetimes, 0.90),
            "p99": percentile(all_lifetimes, 0.99),
            "max": float(all_lifetimes[-1]) if all_lifetimes else 0.0,
        },
        immortal_objects=len(births),
        immortal_volume=immortal_volume,
        histogram=histogram(sizes),
        death_groups=deaths,
    )


# ---------------------------------------------------- format battery (seeded)
def _save(trace, tmp_path, tag):
    if tag == "v0":
        path = tmp_path / "t.v0"
        save_trace(trace, path, version=0)
    elif tag == "v1":
        path = tmp_path / "t.v1"
        save_trace(trace, path, version=1)
    elif tag == "v2":
        path = tmp_path / "t.v2"
        save_trace(trace, path, version=2)
    elif tag == "v2z":
        path = tmp_path / "t.v2z"
        save_trace(trace, path, version=2, compress=True)
    else:  # v1 inside a gzip container
        plain = tmp_path / "plain.v1"
        save_trace(trace, plain, version=1)
        path = tmp_path / "t.v1.gz"
        path.write_bytes(gzip.compress(plain.read_bytes()))
    return path


@pytest.mark.parametrize("tag", ["v0", "v1", "v2", "v2z", "v1gz"])
def test_streaming_equals_materialized_oracle_across_formats(tmp_path, tag):
    trace = churn_trace(1500, UniformSizes(1, 80), target_live=60, seed=21, label="battery")
    path = _save(trace, tmp_path, tag)
    materialized = load_trace(path)
    expected = _materialized_analyze(materialized)
    via_trace = analyze_trace(materialized)
    via_source = analyze_trace(TraceFileSource(path))
    assert via_trace == expected
    assert via_source == expected
    # The rendered terminal tables are byte-identical too.
    assert analytics_result(via_source).to_text() == analytics_result(expected).to_text()


def test_streaming_handles_reinserted_names(tmp_path):
    """A name that dies and comes back is one distinct object, counted once."""
    requests = []
    for round_index in range(3):
        requests.append(Request.insert("phoenix", 4 + round_index))
        requests.append(Request.insert(f"one-off-{round_index}", 2))
        requests.append(Request.delete("phoenix"))
    trace = Trace(requests, label="phoenix")
    path = tmp_path / "p.v2"
    save_trace(trace, path, version=2)
    expected = _materialized_analyze(load_trace(path))
    assert expected.distinct_objects == 4
    assert analyze_trace(TraceFileSource(path)) == expected


def test_analyze_trace_death_buckets_parameter(tmp_path):
    trace = churn_trace(600, target_live=40, seed=4)
    path = tmp_path / "t.v1"
    save_trace(trace, path)
    expected = _materialized_analyze(load_trace(path), death_buckets=4)
    assert analyze_trace(TraceFileSource(path), death_buckets=4) == expected
    assert len(expected.death_groups) == 4


def test_analyze_empty_and_insert_only_traces():
    empty = analyze_trace(Trace([], label="empty"))
    assert empty.requests == 0 and empty.turnover == 0 and empty.mean_volume == 0.0
    assert empty == _materialized_analyze(Trace([], label="empty"))
    grow = Trace([Request.insert(i, 3) for i in range(10)], label="grow")
    assert analyze_trace(grow) == _materialized_analyze(grow)


# ------------------------------------------------------ hypothesis equivalence
churn_scripts = st.lists(
    st.integers(min_value=-64, max_value=48).filter(lambda v: v != 0),
    min_size=1,
    max_size=250,
)


def _script_to_trace(script):
    requests = []
    live = []
    next_id = 0
    for action in script:
        if action > 0 or not live:
            next_id += 1
            name = f"obj {next_id}·"  # whitespace + unicode: v1/v2 encode it
            requests.append(Request.insert(name, abs(action)))
            live.append(name)
        else:
            requests.append(Request.delete(live.pop((-action - 1) % len(live))))
    return Trace(requests, label="hypothesis")


@pytest.mark.parametrize("version,compress", [(1, False), (2, False), (2, True)])
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=churn_scripts)
def test_hypothesis_streaming_equals_materialized(tmp_path_factory, version, compress, script):
    trace = _script_to_trace(script)
    path = tmp_path_factory.mktemp("analytics") / "t.trace"
    save_trace(trace, path, version=version, compress=compress)
    materialized = load_trace(path)
    expected = _materialized_analyze(materialized)
    assert analyze_trace(materialized) == expected
    assert analyze_trace(TraceFileSource(path)) == expected


# ----------------------------------------------------- engine observer parity
def test_observer_rides_along_on_an_engine_run():
    from repro.allocators import FirstFitAllocator

    trace = churn_trace(800, target_live=50, seed=9, label="ride")
    observer = TraceAnalyticsObserver()
    SimulationEngine(FirstFitAllocator(), [observer]).run(trace)
    assert observer.result(label="ride") == _materialized_analyze(trace)
    export = observer.export()
    assert export["requests"] == len(trace)
    assert export["volume_series"]["indices"][0] == 0


# ------------------------------------------------------- size histogram bugfix
def test_size_histogram_gives_zero_sizes_their_own_bucket():
    histogram = size_histogram([0, 0, 1, 1, 5])
    assert histogram[0] == {"low": 0, "high": 0, "count": 2, "volume": 0}
    assert histogram[1] == {"low": 1, "high": 1, "count": 2, "volume": 2}
    assert histogram[2] == {"low": 4, "high": 7, "count": 1, "volume": 5}
    # Without zeros the buckets are unchanged from the historical formula.
    assert size_histogram([1, 2, 64]) == [
        {"low": 1, "high": 1, "count": 1, "volume": 1},
        {"low": 2, "high": 3, "count": 1, "volume": 2},
        {"low": 64, "high": 127, "count": 1, "volume": 64},
    ]


# ----------------------------------------------------------- name-set details
def test_compact_name_set_membership_and_growth():
    names = _NameSet()
    for index in range(2000):
        assert f"name {index}€" not in names
        names.add(f"name {index}€")
    assert len(names) == 2000
    for index in range(2000):
        assert f"name {index}€" in names
    names.add("name 7€")  # re-add is a no-op
    assert len(names) == 2000
    assert "" not in names
    names.add("")
    assert "" in names and len(names) == 2001


# --------------------------------------------------------------------- the CLI
def test_cli_trace_analyze_streams_and_charts(tmp_path, capsys):
    trace = churn_trace(500, target_live=40, seed=6, label="cli stream")
    path = tmp_path / "t.v2z"
    save_trace(trace, path, version=2, compress=True, metadata={"seed": 6})
    assert main(["trace", "analyze", str(path)]) == 0
    out = capsys.readouterr().out
    # The analytics block is byte-identical to the materialised rendering.
    expected = analytics_result(_materialized_analyze(load_trace(path))).to_text()
    assert out.startswith(expected)
    assert "live volume over 500 requests" in out
    assert main(["trace", "analyze", str(path), "--no-chart"]) == 0
    assert "live volume over" not in capsys.readouterr().out


def test_streaming_analytics_rejects_inconsistent_streams():
    """The observer raises the same ValueError a materialised Trace raises,
    instead of crashing with a KeyError or silently mis-counting."""
    with pytest.raises(ValueError, match="request 1: 'b' deleted while inactive"):
        analyze_trace([Request.insert("a", 5), Request.delete("b")])
    with pytest.raises(ValueError, match="request 1: 'a' inserted while active"):
        analyze_trace([Request.insert("a", 5), Request.insert("a", 7)])


def test_cli_trace_analyze_malformed_trace_exits_2(tmp_path, capsys):
    """A v0 file with a dangling delete used to fail at load time; the
    streaming path must keep the exit-2-with-clear-message contract."""
    path = tmp_path / "dangling.v0"
    path.write_text("# trace bad\nI a 5\nD b\n", encoding="utf-8")
    assert main(["trace", "analyze", str(path)]) == 2
    err = capsys.readouterr().err
    assert "'b' deleted while inactive" in err and "Traceback" not in err


def test_cli_trace_analyze_garbage_exits_2(tmp_path, capsys):
    garbage = tmp_path / "garbage.bin"
    garbage.write_bytes(bytes(range(190, 256)) * 7)
    assert main(["trace", "analyze", str(garbage)]) == 2
    err = capsys.readouterr().err
    assert "repro trace analyze" in err and "Traceback" not in err


def test_cli_trace_analyze_truncated_v2_exits_2(tmp_path, capsys):
    whole = tmp_path / "whole.v2"
    save_trace(churn_trace(300, target_live=30, seed=2), whole, version=2)
    clipped = tmp_path / "clipped.v2"
    clipped.write_bytes(whole.read_bytes()[:150])
    assert main(["trace", "analyze", str(clipped)]) == 2
    err = capsys.readouterr().err
    assert "truncated" in err and "Traceback" not in err
