"""Unit tests for the power-of-two size-class arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.size_classes import (
    class_max_size,
    class_min_size,
    num_size_classes,
    size_class_of,
)


def test_small_sizes_map_to_expected_classes():
    assert size_class_of(1) == 1
    assert size_class_of(2) == 2
    assert size_class_of(3) == 2
    assert size_class_of(4) == 3
    assert size_class_of(7) == 3
    assert size_class_of(8) == 4


def test_class_bounds_are_consistent():
    for index in range(1, 20):
        assert class_min_size(index) == 2 ** (index - 1)
        assert class_max_size(index) == 2**index - 1
        assert size_class_of(class_min_size(index)) == index
        assert size_class_of(class_max_size(index)) == index


def test_num_size_classes_matches_paper_formula():
    # floor(log2 delta) + 1 classes.
    assert num_size_classes(1) == 1
    assert num_size_classes(2) == 2
    assert num_size_classes(3) == 2
    assert num_size_classes(1024) == 11


def test_invalid_arguments_raise():
    with pytest.raises(ValueError):
        size_class_of(0)
    with pytest.raises(ValueError):
        class_min_size(0)
    with pytest.raises(ValueError):
        class_max_size(-1)
    with pytest.raises(ValueError):
        num_size_classes(0)


@given(st.integers(min_value=1, max_value=2**40))
def test_every_size_falls_inside_its_class(size):
    index = size_class_of(size)
    assert class_min_size(index) <= size <= class_max_size(index)


@given(st.integers(min_value=1, max_value=2**30))
def test_doubling_a_size_moves_up_exactly_one_class(size):
    assert size_class_of(2 * size) == size_class_of(size) + 1
