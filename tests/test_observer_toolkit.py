"""The observer toolkit: gap histograms, per-class occupancy, trace recording.

Covers the observers standalone (export structure, bounded sampling, final
samples cross-checked against allocator state), the trace-recorder round
trip (engine run -> v2 file -> replay reproduces identical stats and the
E1/E3/E7/E8 experiment tables), and their campaign/CLI integration
(per-cell attachment, ``{cell}`` path binding, ``repro sweep report``).
"""

import json
from dataclasses import asdict

import pytest

from repro.allocators import FirstFitAllocator, LoggingCompactingReallocator
from repro.campaign import CampaignSpec, SpecError, load_results, run_campaign, write_results
from repro.cli import main
from repro.core import CostObliviousReallocator, DeamortizedReallocator
from repro.costs import ConstantCost, LinearCost, RotatingDiskCost
from repro.engine import (
    GapHistogramObserver,
    PerClassOccupancyObserver,
    SimulationEngine,
    TraceRecorderObserver,
)
from repro.harness.runners import (
    _ReservedSpaceObserver,
    _WorstCaseBoundObserver,
    _WorstRequestCostObserver,
    _WorstRequestObserver,
)
from repro.metrics import run_trace
from repro.workloads import TraceFileSource, UniformSizes, churn_trace, load_trace

COSTS = (LinearCost(), ConstantCost(), RotatingDiskCost())


# ------------------------------------------------------------- gap histogram
def test_gap_histogram_final_sample_matches_free_extents():
    trace = churn_trace(400, target_live=40, seed=8)
    observer = GapHistogramObserver(every=1)
    allocator = FirstFitAllocator()
    SimulationEngine(allocator, [observer]).run(trace)
    export = export_of(observer)
    assert export["requests_seen"] == len(trace)
    # every=1: the last sample is the state after the final request.
    expected = {}
    for extent in allocator.free_extents():
        exponent = extent.length.bit_length() - 1
        expected[exponent] = expected.get(exponent, 0) + 1
    exponents = [low.bit_length() - 1 for low, _ in export["buckets"]]
    last = dict(zip(exponents, export["counts"][-1]))
    assert {e: c for e, c in last.items() if c} == expected
    assert export["free_volume"][-1] == allocator.free_volume()
    assert export["total_gaps"][-1] == len(allocator.free_extents())


def test_gap_histogram_falls_back_to_address_space_gaps():
    trace = churn_trace(300, target_live=30, seed=3)
    observer = GapHistogramObserver(every=1)
    allocator = CostObliviousReallocator(epsilon=0.5)
    assert not hasattr(allocator, "free_extents")
    SimulationEngine(allocator, [observer]).run(trace)
    export = export_of(observer)
    gaps = allocator.space.free_gaps()
    assert export["total_gaps"][-1] == len(gaps)
    assert export["free_volume"][-1] == sum(gap.length for gap in gaps)


def test_gap_histogram_sampling_is_bounded():
    trace = churn_trace(3000, target_live=50, seed=5)
    observer = GapHistogramObserver(max_points=16)
    SimulationEngine(FirstFitAllocator(), [observer]).run(trace)
    export = export_of(observer)
    assert 2 <= len(export["indices"]) <= 16
    assert len(export["counts"]) == len(export["indices"])
    assert all(len(row) == len(export["buckets"]) for row in export["counts"])


def export_of(observer):
    export = observer.export()
    # Every export must survive the JSON round trip campaign artifacts take.
    return json.loads(json.dumps(export))


# ------------------------------------------------------- per-class occupancy
def test_per_class_occupancy_conserves_live_volume():
    trace = churn_trace(500, UniformSizes(1, 200), target_live=60, seed=12)
    observer = PerClassOccupancyObserver(every=1)
    allocator = FirstFitAllocator()
    SimulationEngine(allocator, [observer]).run(trace)
    export = export_of(observer)
    assert sum(export["volume"][-1]) == allocator.volume
    assert sum(export["count"][-1]) == allocator.num_objects
    # Classes are power-of-two aligned and every row matches their width.
    for low, high in export["classes"]:
        assert high == 2 * low - 1
    assert all(len(row) == len(export["classes"]) for row in export["volume"])


def test_per_class_occupancy_bounded_and_observer_registry():
    from repro.engine import OBSERVER_KINDS, build_observer

    for kind in ("gap_histogram", "per_class_occupancy", "trace_recorder", "trace_analytics"):
        assert kind in OBSERVER_KINDS
    observer = build_observer({"kind": "per_class_occupancy", "max_points": 8})
    trace = churn_trace(2000, target_live=40, seed=2)
    SimulationEngine(FirstFitAllocator(), [observer]).run(trace)
    assert 2 <= len(observer.indices) <= 8
    with pytest.raises(ValueError, match="bad parameters"):
        build_observer({"kind": "gap_histogram", "nope": 1})


# ------------------------------------------------------------ trace recorder
ALLOCATOR_FACTORIES = [
    ("cost-oblivious", lambda: CostObliviousReallocator(epsilon=0.25)),
    ("deamortized", lambda: DeamortizedReallocator(epsilon=0.25)),
    ("first-fit", FirstFitAllocator),
    ("logging-compacting", LoggingCompactingReallocator),
]


@pytest.fixture(scope="module")
def recorded_trace(tmp_path_factory):
    """A live engine run streamed to a v2 file by the recorder observer."""
    trace = churn_trace(3000, UniformSizes(1, 64), target_live=150, seed=11)
    path = tmp_path_factory.mktemp("recorder") / "recorded.v2z"
    recorder = TraceRecorderObserver(str(path), compress=True, label=trace.label)
    SimulationEngine(FirstFitAllocator(), [recorder]).run(trace)
    assert recorder.requests_written == len(trace)
    assert recorder.file_bytes > 0
    assert recorder.export()["path"] == str(path)
    return trace, TraceFileSource(path)


def metrics_dict(metrics):
    out = asdict(metrics)
    out.pop("elapsed_seconds")
    return out


def test_recorded_file_carries_the_same_requests(recorded_trace):
    trace, source = recorded_trace
    loaded = load_trace(source.path)
    assert [(r.op, r.name, r.size) for r in loaded] == [
        (r.op, str(r.name), r.size if r.is_insert else 0) for r in trace
    ]
    assert source.label == trace.label


@pytest.mark.parametrize(
    "name,factory", ALLOCATOR_FACTORIES, ids=[n for n, _ in ALLOCATOR_FACTORIES]
)
def test_recorded_replay_reproduces_identical_stats(recorded_trace, name, factory):
    trace, source = recorded_trace
    original = run_trace(factory(), trace, cost_functions=COSTS, sample_every=50)
    replayed = run_trace(factory(), source, cost_functions=COSTS, sample_every=50)
    assert metrics_dict(original) == metrics_dict(replayed)


def test_recorded_replay_reproduces_e1_e3_e7_e8_tables(recorded_trace):
    trace, source = recorded_trace

    def e1_rows(replayable):
        out = []
        for epsilon in (0.5, 0.25):
            allocator = CostObliviousReallocator(epsilon=epsilon)
            watcher = _ReservedSpaceObserver()
            run_trace(allocator, replayable, observers=[watcher])
            out.append(
                (epsilon, watcher.footprint_ratio, watcher.reserved_ratio,
                 allocator.stats.amortized_moves_per_insert)
            )
        return out

    def e3_rows(replayable):
        out = []
        for _, factory in ALLOCATOR_FACTORIES:
            allocator = factory()
            watcher = _WorstRequestObserver()
            metrics = run_trace(allocator, replayable, observers=[watcher], cost_functions=COSTS)
            out.append(
                (allocator.describe(), watcher.worst_moves,
                 round(metrics.max_footprint_ratio, 6),
                 {k: round(v, 6) for k, v in metrics.cost_ratios.items()})
            )
        return out

    def e7_rows(replayable):
        out = []
        for cls in (CostObliviousReallocator, DeamortizedReallocator):
            allocator = cls(epsilon=0.25)
            watcher = _WorstCaseBoundObserver(0.25)
            run_trace(allocator, replayable, observers=[watcher])
            out.append(
                (cls.__name__, watcher.worst_moved, watcher.worst_bound, watcher.violations,
                 allocator.stats.amortized_moved_volume_per_request)
            )
        return out

    def e8_rows(replayable):
        allocator = CostObliviousReallocator(epsilon=0.5)
        watcher = _WorstRequestCostObserver(COSTS)
        run_trace(allocator, replayable, observers=[watcher], finish_pending=False)
        return (watcher.worst_moved, watcher.worst_moves, watcher.worst_cost)

    for rows in (e1_rows, e3_rows, e7_rows, e8_rows):
        assert repr(rows(trace)) == repr(rows(source))


def test_recorder_aborts_cleanly_when_the_replay_raises(tmp_path):
    from repro.engine import Observer

    class _Bomb(Observer):
        def on_request(self, record):
            if record.index >= 50:
                raise RuntimeError("boom")

    path = tmp_path / "partial.v2"
    recorder = TraceRecorderObserver(str(path))
    engine = SimulationEngine(FirstFitAllocator(), [recorder, _Bomb()])
    with pytest.raises(RuntimeError, match="boom"):
        engine.run(churn_trace(500, target_live=30, seed=1))
    # The partial v2 file has no END trailer: reading it fails loudly
    # instead of silently yielding a prefix.
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)


def test_recorder_rejects_empty_path():
    with pytest.raises(ValueError, match="path"):
        TraceRecorderObserver("")


def test_abort_of_one_observer_does_not_starve_the_others(tmp_path):
    """A raising on_abort must neither hide the replay error nor prevent
    later observers from releasing their resources."""
    from repro.core.base import AllocationError
    from repro.engine import Observer

    class _ExplodingCleanup(Observer):
        def on_request(self, record):
            pass

        def on_abort(self, allocator, error):
            raise OSError("disk full")

    path = tmp_path / "after.v2"
    recorder = TraceRecorderObserver(str(path))
    engine = SimulationEngine(FirstFitAllocator(), [_ExplodingCleanup(), recorder])
    with pytest.raises(AllocationError):
        engine.run([churn_trace(10, target_live=5, seed=1)[0]] * 2)  # duplicate insert
    # The recorder, listed after the exploding observer, still aborted.
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)


def test_campaign_rejects_a_recorder_path_shared_by_cells(tmp_path, capsys):
    """Without the {cell} placeholder every cell would truncate the same
    file; the sweep refuses up front instead of silently destroying data."""
    shared = CampaignSpec.from_dict(
        {
            "name": "shared",
            "workloads": [{"kind": "churn", "requests": 100, "target_live": 20}],
            "allocators": ["first_fit", "best_fit"],
            "observers": [{"kind": "trace_recorder", "path": str(tmp_path / "rec.v2")}],
        }
    )
    with pytest.raises(SpecError, match="shared by 2 cells"):
        run_campaign(shared, jobs=1)
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(shared.to_dict()), encoding="utf-8")
    assert main(["sweep", str(spec_path), "--quiet"]) == 2
    assert "{cell}" in capsys.readouterr().err
    # A single-cell spec may record to a fixed path.
    single = CampaignSpec.from_dict(
        {
            "name": "single",
            "workloads": [{"kind": "churn", "requests": 100, "target_live": 20}],
            "allocators": ["first_fit"],
            "observers": [{"kind": "trace_recorder", "path": str(tmp_path / "one.v2")}],
        }
    )
    result = run_campaign(single, jobs=1)
    assert result.records[0]["status"] == "ok"


# ------------------------------------------------------ campaign integration
def observer_spec(tmp_path, jobs_placeholder=True):
    recorder_path = str(tmp_path / ("rec-{cell}.v2" if jobs_placeholder else "rec.v2"))
    return CampaignSpec.from_dict(
        {
            "name": "toolkit",
            "seed": 5,
            "workloads": [{"kind": "churn", "requests": 300, "target_live": 40}],
            "allocators": [{"kind": "cost_oblivious", "epsilon": 0.5}, "first_fit"],
            "costs": ["linear"],
            "observers": [
                {"kind": "footprint_series", "max_points": 16},
                {"kind": "gap_histogram", "max_points": 16},
                {"kind": "per_class_occupancy", "max_points": 16},
                {"kind": "trace_recorder", "path": recorder_path},
            ],
        }
    )


def test_campaign_cells_attach_the_toolkit_and_record_per_cell(tmp_path):
    spec = observer_spec(tmp_path)
    spec.validate()
    result = run_campaign(spec, jobs=2)
    assert [record["status"] for record in result.records] == ["ok", "ok"]
    for record in result.records:
        assert record["gap_histogram"]["counts"]
        assert record["per_class_occupancy"]["volume"]
        recorded = record["trace_recorder"]
        assert recorded["path"].endswith(f"rec-{record['index']}.v2")
        assert recorded["requests"] == record["requests"]
        assert len(load_trace(recorded["path"])) == record["requests"]
    # Both cells replay the same workload: the recorded traces are identical.
    first, second = (load_trace(r["trace_recorder"]["path"]) for r in result.records)
    assert [(r.op, r.name, r.size) for r in first] == [(r.op, r.name, r.size) for r in second]
    # The CSV flattens the new exports.
    paths = write_results(result, tmp_path / "out")
    import csv as csv_module

    with open(paths["csv"], newline="", encoding="utf-8") as handle:
        rows = list(csv_module.reader(handle))
    header = rows[0]
    for column in ("gap_histogram", "per_class_occupancy", "trace_recorder"):
        index = header.index(column)
        assert all(row[index] for row in rows[1:])


def test_trace_analytics_observer_attaches_per_cell(tmp_path):
    spec = CampaignSpec.from_dict(
        {
            "name": "cellstats",
            "seed": 2,
            "workloads": [{"kind": "churn", "requests": 200, "target_live": 30}],
            "allocators": ["first_fit"],
            "observers": [{"kind": "trace_analytics", "max_points": 32}],
        }
    )
    result = run_campaign(spec, jobs=1)
    (record,) = result.records
    assert record["status"] == "ok"
    analytics = record["trace_analytics"]
    assert analytics["requests"] == record["requests"]
    assert analytics["inserted_volume"] == record["inserted_volume"]
    assert len(analytics["volume_series"]["volume"]) <= 32


# --------------------------------------------------------------- sweep report
def test_cli_sweep_report_renders_tables_and_charts(tmp_path, capsys):
    spec = observer_spec(tmp_path)
    out_dir = tmp_path / "out"
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
    assert main(["sweep", str(spec_path), "--out", str(out_dir), "--quiet"]) == 0
    capsys.readouterr()
    assert main(["sweep", "report", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "Campaign 'toolkit'" in out and "(recorded)" in out
    assert "footprint over" in out
    assert "free gaps per power-of-two length bucket over time" in out
    assert "live volume per power-of-two size class over time" in out
    # --cell filters the charts but keeps the summary table.
    assert main(["sweep", "report", str(out_dir), "--cell", "no-such-cell"]) == 0
    filtered = capsys.readouterr().out
    assert "Campaign 'toolkit'" in filtered and "footprint over" not in filtered


def test_cli_sweep_report_requires_a_directory(tmp_path, capsys):
    assert main(["sweep", "report"]) == 2
    assert "artifact directory" in capsys.readouterr().err
    assert main(["sweep", "report", str(tmp_path / "absent")]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_cli_sweep_rejects_stray_positional(tmp_path, capsys):
    spec = observer_spec(tmp_path)
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
    assert main(["sweep", str(spec_path), str(tmp_path)]) == 2
    assert "sweep report" in capsys.readouterr().err


def test_spec_validation_covers_the_new_kinds():
    with pytest.raises(SpecError, match="unknown observer"):
        CampaignSpec.from_dict(
            {
                "name": "bad",
                "workloads": ["churn"],
                "allocators": ["first_fit"],
                "observers": ["histogram_of_gaps"],
            }
        ).validate()
    with pytest.raises(SpecError, match="bad parameters"):
        CampaignSpec.from_dict(
            {
                "name": "bad",
                "workloads": ["churn"],
                "allocators": ["first_fit"],
                "observers": [{"kind": "trace_recorder"}],
            }
        ).validate()
