"""Unit tests for the Section 2 cost-oblivious reallocator."""

import pytest

from repro.core import (
    AllocationError,
    CostObliviousReallocator,
    check_invariants,
    render_layout,
)
from repro.core.invariants import InvariantViolation
from repro.core.size_classes import size_class_of
from repro.costs import ConstantCost, LinearCost
from tests.conftest import random_churn


def test_epsilon_validation():
    with pytest.raises(ValueError):
        CostObliviousReallocator(epsilon=0.0)
    with pytest.raises(ValueError):
        CostObliviousReallocator(epsilon=0.75)
    CostObliviousReallocator(epsilon=0.5)  # upper boundary allowed


def test_single_insert_creates_one_region_at_the_origin():
    realloc = CostObliviousReallocator(epsilon=0.5)
    realloc.insert("a", 12)
    assert realloc.address_of("a") == 0
    assert realloc.volume == 12
    assert realloc.region_indices() == [size_class_of(12)]
    check_invariants(realloc)


def test_duplicate_insert_and_unknown_delete_rejected():
    realloc = CostObliviousReallocator()
    realloc.insert("a", 4)
    with pytest.raises(AllocationError):
        realloc.insert("a", 4)
    with pytest.raises(AllocationError):
        realloc.delete("missing")
    with pytest.raises(AllocationError):
        realloc.insert("b", 0)


def test_growing_size_classes_are_appended_in_order():
    realloc = CostObliviousReallocator(epsilon=0.5)
    for exponent in range(6):
        realloc.insert(f"o{exponent}", 2**exponent)
        check_invariants(realloc)
    indices = realloc.region_indices()
    assert indices == sorted(indices)
    # Regions are laid out left to right by class.
    starts = [realloc.region(i).start for i in indices]
    assert starts == sorted(starts)


def test_small_insert_lands_in_a_buffer_without_moves():
    realloc = CostObliviousReallocator(epsilon=0.5)
    realloc.insert("big", 100)
    record = realloc.insert("small", 1)
    assert record.move_count == 0
    assert record.flush is None
    placement = realloc._placement["small"]
    assert placement[0] == "buffer"
    check_invariants(realloc)


def test_flush_empties_buffers_and_restores_invariant_2_4():
    realloc = CostObliviousReallocator(epsilon=0.5, trace=True)
    moving_flush = None
    index = 0
    while moving_flush is None and index < 400:
        record = realloc.insert(index, 4 + (index % 5))
        if record.flush is not None and record.flush.move_count > 0:
            moving_flush = record.flush
        index += 1
        check_invariants(realloc)
    assert moving_flush is not None, "expected a flush that relocates objects"
    assert moving_flush.moved_volume >= moving_flush.move_count
    # After a flush the flushed buffers are empty again (Invariant 2.4); the
    # invariant checker verifies segment contents and capacities.
    check_invariants(realloc)


def test_delete_leaves_hole_and_records_dummy_request():
    realloc = CostObliviousReallocator(epsilon=0.5)
    realloc.insert("big", 64)
    realloc.insert("other", 64)
    footprint_before = realloc.footprint
    record = realloc.delete("big")
    # The hole is not reused immediately; the footprint cannot grow.
    assert realloc.footprint <= footprint_before
    assert realloc.volume == 64
    assert record.op == "delete"
    check_invariants(realloc)


def test_deleting_a_buffered_object_consumes_no_extra_space():
    realloc = CostObliviousReallocator(epsilon=0.5)
    realloc.insert("big", 200)
    realloc.insert("tiny", 1)  # goes to a buffer
    region = realloc.region(realloc.region_indices()[-1])
    used_before = realloc.buffered_volume()
    realloc.delete("tiny")
    assert realloc.buffered_volume() == used_before  # slot became a record
    assert "tiny" not in realloc
    check_invariants(realloc)


def test_footprint_bound_holds_throughout_random_churn():
    realloc = CostObliviousReallocator(epsilon=0.5)
    live = random_churn(realloc, steps=1500, seed=3)
    assert realloc.volume == sum(live.values())
    assert realloc.stats.max_footprint_ratio <= 1.5 + 1e-9
    check_invariants(realloc)


@pytest.mark.parametrize("epsilon", [0.5, 0.25, 0.125])
def test_reserved_space_respects_lemma_2_5_bound(epsilon):
    realloc = CostObliviousReallocator(epsilon=epsilon)
    import random

    rng = random.Random(7)
    live = {}
    next_id = 0
    for _ in range(1200):
        if live and rng.random() < 0.5:
            name = rng.choice(list(live))
            realloc.delete(name)
            del live[name]
        else:
            next_id += 1
            size = rng.randint(1, 80)
            realloc.insert(next_id, size)
            live[next_id] = size
        if realloc.volume:
            assert realloc.reserved_space <= (1 + epsilon) * realloc.volume + 1e-9


def test_cost_ratio_is_bounded_and_cost_oblivious():
    realloc = CostObliviousReallocator(epsilon=0.25)
    random_churn(realloc, steps=3000, seed=11)
    linear = realloc.stats.cost_ratio(LinearCost())
    constant = realloc.stats.cost_ratio(ConstantCost())
    # O((1/eps) log(1/eps)) with eps'=eps/12ish: generous numeric cap.
    assert 0 < linear < 60
    assert 0 < constant < 60


def test_objects_never_overlap_even_during_flushes():
    realloc = CostObliviousReallocator(epsilon=0.5, audit=True)
    random_churn(realloc, steps=800, seed=13, max_size=200)
    realloc.space.verify_disjoint()


def test_moves_only_touch_equal_or_larger_classes():
    """A flush triggered by a class-c object only moves objects of class >= b
    where b <= c — smaller objects are never dragged along (Section 2)."""
    realloc = CostObliviousReallocator(epsilon=0.5, trace=True)
    random_churn(realloc, steps=1000, seed=17, max_size=128)
    for record in realloc.history:
        if record.flush is None:
            continue
        boundary = record.flush.boundary_class
        trigger_class = size_class_of(record.size)
        assert boundary <= trigger_class
        for move in record.moves:
            if move.is_reallocation:
                assert size_class_of(move.size) >= boundary


def test_empty_reallocator_reports_zero_footprint():
    realloc = CostObliviousReallocator()
    assert realloc.footprint == 0
    assert realloc.volume == 0
    assert realloc.reserved_space == 0
    assert render_layout(realloc) == "(empty layout)"


def test_structure_shrinks_to_zero_after_all_deletions():
    realloc = CostObliviousReallocator(epsilon=0.5)
    for index in range(50):
        realloc.insert(index, 1 + index % 9)
    for index in range(50):
        realloc.delete(index)
    assert realloc.volume == 0
    assert realloc.num_objects == 0
    assert realloc.reserved_space == 0
    check_invariants(realloc)


def test_invariant_checker_detects_corruption():
    realloc = CostObliviousReallocator(epsilon=0.5)
    for index in range(30):
        realloc.insert(index, 4)
    # Corrupt the structure deliberately: shrink a payload capacity.
    some_class = realloc.region_indices()[0]
    realloc.region(some_class).payload_capacity = 0
    with pytest.raises(InvariantViolation):
        check_invariants(realloc)


def test_render_layout_mentions_every_region():
    realloc = CostObliviousReallocator(epsilon=0.5)
    for index, size in enumerate([1, 3, 9, 30, 100]):
        realloc.insert(index, size)
    picture = render_layout(realloc)
    for cls in realloc.region_indices():
        assert f"class {cls:>2}" in picture
