"""Tests for the workload generators, size distributions, and trace replay."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    BimodalSizes,
    DatabaseBlockSizes,
    FixedSizes,
    PowerOfTwoSizes,
    Request,
    Trace,
    UniformSizes,
    ZipfSizes,
    churn_trace,
    database_trace,
    descending_powers_trace,
    fragmentation_attack_trace,
    grow_then_shrink_trace,
    large_then_small_trace,
    load_trace,
    lower_bound_trace,
    repeated_large_delete_trace,
    save_trace,
    sawtooth_trace,
    sliding_window_trace,
    small_flood_trace,
    trace_from_pairs,
)

ALL_GENERATORS = [
    lambda: churn_trace(500, seed=1),
    lambda: grow_then_shrink_trace(100, seed=2, order="fifo"),
    lambda: grow_then_shrink_trace(100, seed=2, order="lifo"),
    lambda: grow_then_shrink_trace(100, seed=2, order="random"),
    lambda: sliding_window_trace(200, window=40, seed=3),
    lambda: database_trace(500, seed=4),
    lambda: lower_bound_trace(64),
    lambda: large_then_small_trace(64, rounds=4),
    lambda: repeated_large_delete_trace(64),
    lambda: small_flood_trace(6),
    lambda: descending_powers_trace(6, waves=3),
    lambda: fragmentation_attack_trace(30),
    lambda: sawtooth_trace(40, rounds=3),
]


@pytest.mark.parametrize("generator", ALL_GENERATORS)
def test_generated_traces_are_well_formed(generator):
    trace = generator()
    assert len(trace) > 0
    # Trace's constructor validates insert-before-delete and no double insert;
    # also check that sizes are positive and the label is set.
    assert all(r.size >= 1 for r in trace if r.is_insert)
    assert trace.label
    assert trace.delta >= 1
    assert trace.peak_volume() > 0


def test_request_validation():
    with pytest.raises(ValueError):
        Request("upsert", "a", 1)
    with pytest.raises(ValueError):
        Request.insert("a", 0)
    assert Request.delete("a").is_delete


def test_trace_rejects_inconsistent_sequences():
    with pytest.raises(ValueError):
        Trace([Request.delete("ghost")])
    with pytest.raises(ValueError):
        Trace([Request.insert("a", 1), Request.insert("a", 2)])


def test_trace_statistics():
    trace = trace_from_pairs(
        [("insert", "a", 4), ("insert", "b", 6), ("delete", "a", 0), ("insert", "c", 2)]
    )
    assert trace.num_inserts == 3
    assert trace.num_deletes == 1
    assert trace.delta == 6
    assert trace.total_inserted_volume == 12
    assert trace.volume_profile() == [4, 10, 6, 8]
    assert trace.peak_volume() == 10
    assert dict(trace.final_live_objects()) == {"b": 6, "c": 2}
    assert len(trace.prefix(2)) == 2


def test_churn_trace_is_deterministic_per_seed():
    a = churn_trace(300, seed=7)
    b = churn_trace(300, seed=7)
    c = churn_trace(300, seed=8)
    assert [(r.op, r.name, r.size) for r in a] == [(r.op, r.name, r.size) for r in b]
    assert [(r.op, r.name, r.size) for r in a] != [(r.op, r.name, r.size) for r in c]


def test_churn_trace_keeps_live_population_near_target():
    trace = churn_trace(3000, seed=9, target_live=100)
    live = 0
    max_live = 0
    for request in trace:
        live += 1 if request.is_insert else -1
        max_live = max(max_live, live)
    assert max_live <= 150


def test_lower_bound_trace_structure():
    trace = lower_bound_trace(32)
    assert trace[0].is_insert and trace[0].size == 32
    assert trace[-1].is_delete and trace[-1].name == "big"
    assert trace.num_inserts == 33


def test_sliding_window_trace_deletes_in_fifo_order():
    trace = sliding_window_trace(100, window=10, seed=5)
    deletions = [r.name for r in trace if r.is_delete]
    assert deletions == sorted(deletions)
    assert not trace.final_live_objects()


@pytest.mark.parametrize(
    "distribution",
    [FixedSizes(8), UniformSizes(1, 64), PowerOfTwoSizes(0, 10), ZipfSizes(1.5, 256),
     BimodalSizes(4, 512, 0.1), DatabaseBlockSizes(64)],
    ids=lambda d: d.name,
)
def test_size_distributions_produce_positive_sizes(distribution):
    rng = random.Random(0)
    samples = [distribution(rng) for _ in range(500)]
    assert all(size >= 1 for size in samples)


def test_power_of_two_distribution_emits_only_powers():
    rng = random.Random(1)
    distribution = PowerOfTwoSizes(0, 8)
    for _ in range(200):
        size = distribution(rng)
        assert size & (size - 1) == 0


def test_zipf_is_heavy_tailed_towards_small_sizes():
    rng = random.Random(2)
    distribution = ZipfSizes(1.5, 128)
    samples = [distribution(rng) for _ in range(2000)]
    assert sum(1 for s in samples if s <= 4) > len(samples) / 2
    assert max(samples) > 16


def test_invalid_distribution_parameters():
    with pytest.raises(ValueError):
        UniformSizes(5, 4)
    with pytest.raises(ValueError):
        ZipfSizes(alpha=0)
    with pytest.raises(ValueError):
        BimodalSizes(4, 2)
    with pytest.raises(ValueError):
        grow_then_shrink_trace(10, order="sideways")


def test_trace_save_and_load_roundtrip(tmp_path):
    trace = churn_trace(200, seed=11)
    path = tmp_path / "trace.txt"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert len(loaded) == len(trace)
    assert loaded.label == trace.label
    for original, restored in zip(trace, loaded):
        assert original.op == restored.op
        assert str(original.name) == restored.name
        if original.is_insert:
            assert original.size == restored.size


def test_load_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("I a 5\nX nonsense\n")
    with pytest.raises(ValueError):
        load_trace(path)


@settings(max_examples=30, deadline=None)
@given(
    num=st.integers(1, 80),
    window=st.integers(1, 40),
    seed=st.integers(0, 5),
)
def test_sliding_window_property_all_objects_deleted(num, window, seed):
    trace = sliding_window_trace(num, window=window, seed=seed)
    assert trace.num_inserts == num
    assert trace.num_deletes == num
    assert not trace.final_live_objects()
