"""Tests for the incremental session core (:mod:`repro.engine.session`).

The refactor contract: ``SimulationEngine.run`` over one session must be
byte-identical to the old monolithic run (the whole existing suite pins
that); these tests pin what is *new* — the incremental lifecycle, live
stats/analytics, snapshot/restore, the ``requests_per_second`` finiteness
fix, and the ``CheckpointManager`` state round-trip the snapshots ride on.
"""

import json
import pickle

import pytest

from repro.allocators import FirstFitAllocator
from repro.engine import (
    EngineSession,
    FootprintSeriesObserver,
    SessionStateError,
    SimulationEngine,
    TraceRecorderObserver,
)
from repro.engine.engine import EngineRun
from repro.metrics import run_trace
from repro.metrics.collector import ExecutionMetrics
from repro.obs import MemorySink, Telemetry, use_telemetry
from repro.storage.checkpoint import (
    CheckpointManager,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)
from repro.storage.extent import Extent
from repro.workloads import Request, UniformSizes, churn_trace, load_trace


def batches(trace, size):
    requests = list(trace)
    return [requests[i : i + size] for i in range(0, len(requests), size)]


def layout(allocator):
    return sorted(
        (name, extent.start, extent.length)
        for name, extent in allocator.space.snapshot().items()
    )


# ----------------------------------------------------------------- lifecycle
def test_incremental_session_matches_one_shot_run():
    trace = churn_trace(600, UniformSizes(1, 32), target_live=60, seed=5)
    one_shot = SimulationEngine(FirstFitAllocator()).run(trace)

    session = EngineSession(FirstFitAllocator()).open()
    applied = sum(session.apply(batch) for batch in batches(trace, 64))
    run = session.close()
    assert applied == len(list(trace)) == run.requests
    assert run.allocator.footprint == one_shot.allocator.footprint
    assert run.allocator.volume == one_shot.allocator.volume
    assert run.allocator.stats.max_footprint == one_shot.allocator.stats.max_footprint
    assert layout(run.allocator) == layout(one_shot.allocator)


def test_lifecycle_misuse_is_loud():
    session = EngineSession(FirstFitAllocator())
    with pytest.raises(SessionStateError, match="not open"):
        session.apply([Request.insert("a", 1)])
    session.open()
    with pytest.raises(SessionStateError, match="already open"):
        session.open()
    session.close()
    with pytest.raises(SessionStateError, match="already closed"):
        session.apply([Request.insert("a", 1)])
    with pytest.raises(SessionStateError, match="already closed"):
        session.close()


def test_live_stats_and_analytics_do_not_finish_the_session():
    observer = FootprintSeriesObserver(every=10)
    session = EngineSession(FirstFitAllocator(), [observer]).open()
    session.apply(list(churn_trace(200, UniformSizes(1, 16), target_live=20, seed=1)))
    stats = session.stats()
    assert stats["requests"] == 200
    assert stats["footprint"] == session.allocator.footprint
    assert stats["requests_per_second"] >= 0.0
    json.dumps(stats, allow_nan=False)  # live stats are always JSON-safe
    analytics = session.analytics()
    assert observer.export_key in analytics
    assert session.opened  # still live
    run = session.close()
    assert run.requests == 200


def test_mid_batch_failure_keeps_the_session_alive():
    session = EngineSession(FirstFitAllocator()).open()
    bad = [
        Request.insert("a", 4),
        Request.insert("a", 4),  # duplicate name raises
        Request.insert("b", 4),
    ]
    with pytest.raises(Exception):
        session.apply(bad)
    # The failing request rolled back; the prefix stuck; the session lives.
    assert session.requests_applied == 1
    assert session.apply([Request.insert("b", 4)]) == 1
    run = session.close()
    assert run.requests == 2


def test_abort_is_idempotent_and_detaches_observers():
    observer = FootprintSeriesObserver(every=1)
    allocator = FirstFitAllocator()
    session = EngineSession(allocator, [observer]).open()
    assert allocator._observers  # active observer attached
    error = RuntimeError("boom")
    session.abort(error)
    session.abort(error)  # idempotent
    assert not allocator._observers
    with pytest.raises(SessionStateError):
        session.close()


def test_context_manager_closes_on_success_and_aborts_on_error():
    with EngineSession(FirstFitAllocator()) as session:
        session.apply([Request.insert("a", 4)])
    assert not session.opened

    allocator = FirstFitAllocator()
    with pytest.raises(RuntimeError, match="boom"):
        with EngineSession(allocator) as session:
            raise RuntimeError("boom")
    assert not session.opened


def test_session_spans_match_the_engine_spans():
    trace = churn_trace(50, UniformSizes(1, 8), target_live=10, seed=2)
    sink_engine, sink_session = MemorySink(), MemorySink()
    with use_telemetry(Telemetry(sink=sink_engine, enabled=True)):
        SimulationEngine(FirstFitAllocator()).run(trace)
    with use_telemetry(Telemetry(sink=sink_session, enabled=True)):
        session = EngineSession(FirstFitAllocator()).open()
        session.apply(list(trace))
        session.close()

    def span_names(sink):
        return [e.get("name") for e in sink.events if e.get("type") == "span"]

    assert span_names(sink_engine) == span_names(sink_session)


# ------------------------------------------------------- snapshot / restore
def test_snapshot_restore_round_trip_continues_the_session(tmp_path):
    trace = list(churn_trace(400, UniformSizes(1, 32), target_live=40, seed=9))
    session = EngineSession(FirstFitAllocator(), label="live").open()
    session.apply(trace[:250])
    described = session.snapshot(tmp_path / "live.snap")
    assert described["requests_applied"] == 250

    restored = EngineSession.restore(tmp_path / "live.snap")
    assert restored.label == "live"
    assert restored.requests_applied == 250
    restored.apply(trace[250:])
    run = restored.close()
    assert run.requests == 400

    # Converges to the same state as the uninterrupted session.
    baseline = EngineSession(FirstFitAllocator()).open()
    baseline.apply(trace)
    base_run = baseline.close()
    assert run.allocator.footprint == base_run.allocator.footprint
    assert layout(run.allocator) == layout(base_run.allocator)


def test_snapshot_skips_unsnapshotable_observers(tmp_path):
    recorder = TraceRecorderObserver(tmp_path / "rec.v3", version=3)
    series = FootprintSeriesObserver(every=5)
    session = EngineSession(FirstFitAllocator(), [recorder, series]).open()
    session.apply([Request.insert("a", 4), Request.delete("a")])
    described = session.snapshot(tmp_path / "s.snap")
    assert described["observers"] == 1  # the recorder holds an open file
    restored = EngineSession.restore(tmp_path / "s.snap")
    assert [type(obs).__name__ for obs in restored.observers] == [
        "FootprintSeriesObserver"
    ]
    session.close()
    assert load_trace(tmp_path / "rec.v3").requests  # recorder still worked


def test_restore_rejects_foreign_payloads(tmp_path):
    write_snapshot(tmp_path / "x.snap", {"format": "something-else"})
    with pytest.raises(ValueError, match="not a session snapshot"):
        EngineSession.restore(tmp_path / "x.snap")


def test_snapshot_reader_rejects_corruption(tmp_path):
    write_snapshot(tmp_path / "ok.snap", {"format": "f", "n": 1})
    assert read_snapshot(tmp_path / "ok.snap")["n"] == 1
    data = (tmp_path / "ok.snap").read_bytes()
    (tmp_path / "bad-magic.snap").write_bytes(b"XXXXXXXX" + data[8:])
    with pytest.raises(SnapshotError, match="magic"):
        read_snapshot(tmp_path / "bad-magic.snap")
    (tmp_path / "torn.snap").write_bytes(data[: len(data) - 3])
    with pytest.raises(SnapshotError):
        read_snapshot(tmp_path / "torn.snap")


# ------------------------------------------------- requests_per_second fix
def test_engine_run_rps_is_zero_not_inf_on_instant_runs():
    run = EngineRun(
        allocator=FirstFitAllocator(),
        trace="t",
        requests=10,
        elapsed_seconds=0.0,
        observers=[],
    )
    assert run.requests_per_second == 0.0
    json.dumps(run.requests_per_second, allow_nan=False)


def test_execution_metrics_rps_is_zero_not_inf_on_instant_runs():
    metrics = ExecutionMetrics(
        allocator="first_fit",
        trace="t",
        requests=10,
        elapsed_seconds=0.0,
        final_volume=0,
        final_footprint=0,
        max_footprint=0,
        max_footprint_ratio=1.0,
        mean_footprint_ratio=1.0,
        total_moves=0,
        total_moved_volume=0,
        moves_per_insert=0.0,
        max_request_moved_volume=0,
        max_request_checkpoints=0,
        total_checkpoints=0,
        flushes=0,
    )
    assert metrics.requests_per_second == 0.0
    json.dumps(metrics.requests_per_second, allow_nan=False)
    # And the real path stays finite even when the clock resolution
    # swallows the elapsed time entirely.
    result = run_trace(FirstFitAllocator(), [Request.insert("a", 1)])
    assert result.requests_per_second >= 0.0


def test_session_stats_rps_is_json_safe_with_zero_elapsed():
    session = EngineSession(FirstFitAllocator()).open()
    session.apply([Request.insert("a", 1)])
    session._elapsed = 0.0  # force the sub-resolution branch
    stats = session.stats()
    assert stats["requests_per_second"] == 0.0
    session.close()


# ----------------------------------------- CheckpointManager state round-trip
def test_checkpoint_manager_state_round_trip():
    manager = CheckpointManager(enforce=True)
    manager.record_free(Extent(0, 4))
    manager.record_free(Extent(4, 4))  # adjacent: coalesces to one extent
    manager.checkpoint()
    manager.record_free(Extent(20, 6))
    state = manager.to_state()
    assert state == {
        "enforce": True,
        "frozen": [[20, 6]],
        "checkpoints_taken": 1,
        "violations": 0,
    }
    clone = CheckpointManager.from_state(state)
    assert clone.to_state() == state
    assert not clone.is_writable(Extent(22, 2))
    assert clone.is_writable(Extent(0, 8))  # thawed by the checkpoint


def test_checkpoint_manager_state_survives_pickle():
    manager = CheckpointManager(enforce=False)
    manager.record_free(Extent(10, 6))
    manager.assert_writable(Extent(12, 2))  # counted, not raised (enforce off)
    state = pickle.loads(pickle.dumps(manager.to_state()))
    clone = CheckpointManager.from_state(state)
    assert clone.violations == manager.violations == 1
    assert not clone.is_writable(Extent(10, 1))
    assert not clone.enforce
    json.dumps(state)  # the state dict is JSON-safe by construction


def test_checkpoint_recover_thaws_frozen_space_and_keeps_counters():
    manager = CheckpointManager(enforce=True)
    manager.record_free(Extent(0, 4))
    manager.checkpoint()
    manager.record_free(Extent(8, 8))
    assert not manager.is_writable(Extent(8, 1))
    manager.recover()
    assert manager.is_writable(Extent(8, 1))
    assert manager.to_state()["frozen"] == []
    assert manager.checkpoints_taken == 1
