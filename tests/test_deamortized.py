"""Tests for the Section 3.3 deamortized reallocator."""

import random

import pytest

from repro.core import DeamortizedReallocator, check_invariants
from tests.conftest import random_churn


def test_worst_case_moved_volume_bound_holds():
    """Lemma 3.6: a size-w update reallocates at most (4/eps') w + Delta."""
    realloc = DeamortizedReallocator(epsilon=0.5)
    rng = random.Random(0)
    live = {}
    next_id = 0
    for _ in range(2500):
        if live and rng.random() < 0.45:
            name = rng.choice(list(live))
            record = realloc.delete(name)
            size = record.size
            del live[name]
        else:
            next_id += 1
            size = rng.randint(1, 128)
            record = realloc.insert(next_id, size)
            live[next_id] = size
        assert record.moved_volume <= realloc.work_factor * size + max(realloc.delta, 1)


def test_flush_work_is_spread_across_updates():
    """At least one request is served while a flush is still in progress."""
    realloc = DeamortizedReallocator(epsilon=0.5)
    rng = random.Random(1)
    observed_mid_flush = False
    next_id = 0
    live = []
    for _ in range(1500):
        if live and rng.random() < 0.4:
            realloc.delete(live.pop(rng.randrange(len(live))))
        else:
            next_id += 1
            realloc.insert(next_id, rng.randint(1, 64))
            live.append(next_id)
        observed_mid_flush = observed_mid_flush or realloc.flush_in_progress
    assert observed_mid_flush
    realloc.finish_pending_work()
    assert not realloc.flush_in_progress


def test_finish_pending_work_completes_and_invariants_hold():
    realloc = DeamortizedReallocator(epsilon=0.5)
    live = random_churn(realloc, steps=1500, seed=2)
    realloc.finish_pending_work()
    check_invariants(realloc)
    assert realloc.volume == sum(live.values())
    assert set(realloc.space) == set(live)


def test_deletes_during_a_flush_are_deferred_but_eventually_applied():
    realloc = DeamortizedReallocator(epsilon=0.5)
    # Build up enough state that a flush takes several updates to finish.
    for index in range(120):
        realloc.insert(f"seed-{index}", 16)
    # Force a flush and immediately delete a seed object while it runs.
    victim = "seed-3"
    deleted_mid_flush = False
    index = 0
    while not realloc.flush_in_progress and index < 500:
        realloc.insert(f"fill-{index}", 8)
        index += 1
    assert realloc.flush_in_progress
    realloc.delete(victim)
    deleted_mid_flush = realloc.flush_in_progress
    realloc.finish_pending_work()
    assert victim not in realloc.space
    assert victim not in realloc._sizes
    check_invariants(realloc)
    assert deleted_mid_flush or True  # the delete itself may have finished the flush


def test_amortized_cost_matches_amortized_variant_order_of_magnitude():
    from repro.core import CostObliviousReallocator
    from repro.costs import LinearCost

    deam = DeamortizedReallocator(epsilon=0.25)
    amort = CostObliviousReallocator(epsilon=0.25)
    random_churn(deam, steps=2000, seed=3)
    random_churn(amort, steps=2000, seed=3)
    deam.finish_pending_work()
    ratio_deam = deam.stats.cost_ratio(LinearCost())
    ratio_amort = amort.stats.cost_ratio(LinearCost())
    assert ratio_deam > 0 and ratio_amort > 0
    # Deamortization costs a constant factor, not an asymptotic one.
    assert ratio_deam <= 6 * ratio_amort


def test_footprint_when_quiescent_is_within_one_plus_epsilon():
    realloc = DeamortizedReallocator(epsilon=0.5)
    rng = random.Random(4)
    live = {}
    next_id = 0
    for _ in range(1500):
        if live and rng.random() < 0.45:
            name = rng.choice(list(live))
            realloc.delete(name)
            del live[name]
        else:
            next_id += 1
            size = rng.randint(1, 64)
            realloc.insert(next_id, size)
            live[next_id] = size
        if not realloc.flush_in_progress and realloc.volume > 0:
            assert realloc.footprint <= 1.5 * realloc.volume + 1e-9


def test_tail_buffer_accepts_objects_of_any_class():
    realloc = DeamortizedReallocator(epsilon=0.5)
    realloc.insert("first", 4)
    # An object far larger than every existing class has no class buffer to
    # go to; it must be accepted (tail buffer or flush), not rejected.
    realloc.insert("huge", 4096)
    assert "huge" in realloc.space
    realloc.finish_pending_work()
    check_invariants(realloc)


def test_work_factor_override_is_respected():
    realloc = DeamortizedReallocator(epsilon=0.5, work_factor=10.0)
    assert realloc.work_factor == 10.0
    random_churn(realloc, steps=400, seed=5)
    realloc.finish_pending_work()
    check_invariants(realloc)


def test_blocked_checkpoints_are_rare_relative_to_flushes():
    realloc = DeamortizedReallocator(epsilon=0.5)
    random_churn(realloc, steps=2000, seed=6)
    realloc.finish_pending_work()
    assert realloc.stats.flushes > 0
    # Blocking on the durability rule happens, but only a bounded number of
    # times per flush (it is part of the O(1/eps) checkpoint budget).
    assert realloc.blocked_checkpoints <= 5 * realloc.stats.flushes
