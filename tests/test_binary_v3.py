"""The v3 block-indexed format: round-trips, seeking, and error paths.

The hypothesis battery drives traces across block-size boundaries (block
sizes small enough that every trace spans several blocks, plus the exact
boundary cases: trace length a multiple of the block size, one under, one
over) and checks three invariants end to end:

* a v3 file round-trips byte-for-byte equal requests through every reader
  (materialising ``load_trace``, streaming ``iter_trace``), compressed and
  plain;
* seeking to block *n* via the footer index and scanning the suffix yields
  exactly the same requests as skipping ``n`` blocks of a full scan — and
  the entry snapshot at block *n* equals the live set a serial replay has
  at that point;
* truncating the file anywhere raises :class:`TraceFormatError` naming the
  file, never a silent prefix.
"""

import gzip
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.workloads import (
    Request,
    Trace,
    TraceFileSource,
    TraceFormatError,
    iter_trace,
    load_trace,
    read_block_index,
    save_trace,
    trace_info,
)
from repro.workloads.binary import MAGIC, encode_varint


def churny_trace(seed, requests, label="v3t"):
    """A seeded well-formed trace with inserts, deletes, and name reuse."""
    rng = random.Random(seed)
    pool = [f"obj-{i}" for i in range(64)] + ["naïve name", "a b", "# x", ""]
    live = set()
    out = []
    for _ in range(requests):
        if live and (rng.random() < 0.45 or len(live) == len(pool)):
            name = rng.choice(sorted(live))
            live.discard(name)
            out.append(Request.delete(name))
        else:
            name = rng.choice([n for n in pool if n not in live])
            live.add(name)
            out.append(Request.insert(name, rng.randint(1, 2**20)))
    return Trace(out, label=label, metadata={"seed": seed})


def assert_same_requests(expected, actual):
    expected = list(expected)
    actual = list(actual)
    assert len(actual) == len(expected)
    for left, right in zip(expected, actual):
        assert (left.op, left.name) == (right.op, right.name)
        if left.is_insert:
            assert left.size == right.size


# ------------------------------------------------------------ hypothesis battery
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 999),
    block_records=st.sampled_from([1, 2, 3, 5, 8]),
    boundary=st.sampled_from([-1, 0, 1]),
    multiple=st.integers(1, 6),
    compress=st.booleans(),
)
def test_v3_round_trip_across_block_boundaries(
    tmp_path_factory, seed, block_records, boundary, multiple, compress
):
    """Round trip with the trace length a multiple of the block size, one
    under, and one over — the off-by-one edges of block flushing."""
    requests = max(0, block_records * multiple + boundary)
    trace = churny_trace(seed, requests)
    path = tmp_path_factory.mktemp("v3rt") / "t.v3"
    save_trace(trace, path, version=3, compress=compress, block_records=block_records)
    assert_same_requests(trace, load_trace(path))
    assert_same_requests(trace, iter_trace(path))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 999),
    block_records=st.sampled_from([2, 3, 7]),
    requests=st.integers(0, 60),
    data=st.data(),
)
def test_v3_seek_to_block_suffix_equals_full_scan(
    tmp_path_factory, seed, block_records, requests, data
):
    """``iter_range(n)`` == skipping the first n blocks of a serial scan,
    and ``entry_snapshot(n)`` == the live set a serial replay has there."""
    trace = churny_trace(seed, requests)
    path = tmp_path_factory.mktemp("v3seek") / "t.v3"
    save_trace(trace, path, version=3, block_records=block_records)
    index = read_block_index(path)
    assert index is not None
    assert index.total_records == len(trace)
    assert sum(block.records for block in index.blocks) == len(trace)

    block = data.draw(st.integers(0, max(0, len(index.blocks) - 1)))
    start = index.blocks[block].start if index.blocks else 0
    assert_same_requests(list(trace)[start:], index.iter_range(block))

    live = {}
    for request in list(trace)[:start]:
        if request.is_insert:
            live[str(request.name)] = request.size
        else:
            live.pop(str(request.name), None)
    snapshot = dict(index.entry_snapshot(block)) if index.blocks else {}
    assert snapshot == live


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 99), compress=st.booleans(), data=st.data())
def test_v3_truncation_detected_at_every_cut(tmp_path_factory, seed, compress, data):
    """Cutting a v3 file anywhere must raise a loud error naming the path."""
    trace = churny_trace(seed, 24)
    path = tmp_path_factory.mktemp("v3cut") / "whole.v3"
    save_trace(trace, path, version=3, compress=compress, block_records=5)
    whole = path.read_bytes()
    cut = data.draw(st.integers(1, len(whole) - 1))
    clipped = path.parent / f"cut-{cut}.v3"
    clipped.write_bytes(whole[:cut])
    with pytest.raises(TraceFormatError, match="cut-"):
        list(iter_trace(clipped))
    with pytest.raises(TraceFormatError):
        load_trace(clipped)


# ----------------------------------------------------------------- fixed cases
def test_v3_empty_trace_round_trips(tmp_path):
    path = tmp_path / "empty.v3"
    save_trace(Trace([], label="empty"), path, version=3)
    loaded = load_trace(path)
    assert len(loaded) == 0
    assert loaded.label == "empty"
    index = read_block_index(path)
    assert index is not None
    assert len(index) == 0
    assert index.total_records == 0


def test_v3_label_and_metadata_round_trip(tmp_path):
    trace = Trace([Request.insert("x", 3)], label="v3 demo", metadata={"seed": 9})
    path = tmp_path / "meta.v3"
    save_trace(trace, path, version=3, metadata={"extra": True})
    loaded = load_trace(path)
    assert loaded.label == "v3 demo"
    assert loaded.metadata == {"seed": 9, "extra": True}


def test_v3_trace_file_source_is_re_iterable(tmp_path):
    trace = churny_trace(4, 30)
    path = tmp_path / "t.v3"
    save_trace(trace, path, version=3, block_records=7)
    source = TraceFileSource(path)
    assert_same_requests(trace, source)
    assert_same_requests(trace, source)


def test_v3_info_reports_blocks_and_seekability(tmp_path):
    trace = churny_trace(5, 23)
    plain = tmp_path / "t.v3"
    save_trace(trace, plain, version=3, block_records=5)
    info = trace_info(plain)
    assert info.version == 3
    assert info.seekable
    assert info.blocks == 5  # ceil(23 / 5)
    assert info.block_records == 5
    assert info.requests == 23

    gz = tmp_path / "t.v3.gz"
    gz.write_bytes(gzip.compress(plain.read_bytes()))
    info = trace_info(gz)
    assert info.version == 3
    assert not info.seekable
    assert info.requests == 23

    v2 = tmp_path / "t.v2"
    save_trace(trace, v2, version=2)
    info = trace_info(v2)
    assert not info.seekable
    assert info.blocks == 0


def test_read_block_index_returns_none_for_unseekable_files(tmp_path):
    trace = churny_trace(6, 10)
    v2 = tmp_path / "t.v2"
    save_trace(trace, v2, version=2)
    assert read_block_index(v2) is None

    v1 = tmp_path / "t.v1"
    save_trace(trace, v1, version=1)
    assert read_block_index(v1) is None

    v3 = tmp_path / "t.v3"
    save_trace(trace, v3, version=3)
    gz = tmp_path / "t.v3.gz"
    gz.write_bytes(gzip.compress(v3.read_bytes()))
    assert read_block_index(gz) is None


def test_v3_per_block_compression_stays_seekable(tmp_path):
    """``compress=True`` on v3 compresses each block body, not the container,
    so the footer index still works."""
    trace = churny_trace(7, 40)
    path = tmp_path / "t.v3z"
    save_trace(trace, path, version=3, compress=True, block_records=8)
    index = read_block_index(path)
    assert index is not None
    assert index.compressed
    assert len(index) == 5
    assert_same_requests(trace, index.iter_range(0))


def test_v3_bad_footer_magic_rejected(tmp_path):
    trace = churny_trace(8, 12)
    path = tmp_path / "t.v3"
    save_trace(trace, path, version=3, block_records=4)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF
    broken = tmp_path / "badfooter.v3"
    broken.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="footer magic"):
        read_block_index(broken)


def test_v3_trailer_offset_out_of_range_rejected(tmp_path):
    trace = churny_trace(9, 12)
    path = tmp_path / "t.v3"
    save_trace(trace, path, version=3, block_records=4)
    data = bytearray(path.read_bytes())
    data[-16:-8] = (len(data) + 100).to_bytes(8, "little")
    broken = tmp_path / "badoffset.v3"
    broken.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="past the footer"):
        read_block_index(broken)


def test_v3_footer_count_mismatch_rejected(tmp_path):
    """A footer whose per-block record counts don't sum to the END total."""
    trace = churny_trace(10, 12)
    path = tmp_path / "t.v3"
    save_trace(trace, path, version=3, block_records=4)
    index = read_block_index(path)
    data = bytearray(path.read_bytes())
    # The END record starts with tag 0x00 then varint(total); bump the total.
    end_offset = int.from_bytes(data[-16:-8], "little")
    assert data[end_offset] == 0x00
    old = encode_varint(index.total_records)
    new = encode_varint(index.total_records + 1)
    assert len(old) == len(new)
    data[end_offset + 1 : end_offset + 1 + len(old)] = new
    broken = tmp_path / "badcount.v3"
    broken.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="sum to"):
        read_block_index(broken)


def test_v3_block_tag_mismatch_rejected(tmp_path):
    """Corrupting the tag byte at a block's indexed offset fails the seek."""
    trace = churny_trace(11, 12)
    path = tmp_path / "t.v3"
    save_trace(trace, path, version=3, block_records=4)
    index = read_block_index(path)
    data = bytearray(path.read_bytes())
    data[index.blocks[1].offset] = 0x7E
    broken = tmp_path / "badtag.v3"
    broken.write_bytes(bytes(data))
    corrupt = read_block_index(broken)
    with pytest.raises(TraceFormatError, match="block tag|block 1"):
        list(corrupt.iter_range(1))


def test_v3_rejects_block_size_below_one(tmp_path):
    with pytest.raises(ValueError, match="block size"):
        save_trace(Trace([]), tmp_path / "x.v3", version=3, block_records=0)


def test_v2z_gzip_container_truncation_detected_at_every_cut(tmp_path):
    """The gzip-container regression: a clipped ``.gz`` trace must raise a
    loud truncation error naming the file, never yield a silent prefix."""
    trace = churny_trace(12, 40)
    plain = tmp_path / "t.v2"
    save_trace(trace, plain, version=2)
    whole = gzip.compress(plain.read_bytes())
    for cut in sorted({1, 10, len(whole) // 3, len(whole) // 2, len(whole) - 1}):
        clipped = tmp_path / f"cut-{cut}.v2.gz"
        clipped.write_bytes(whole[:cut])
        with pytest.raises(ValueError, match=f"cut-{cut}|empty file"):
            list(iter_trace(clipped))
        with pytest.raises(ValueError):
            load_trace(clipped)
