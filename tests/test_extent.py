"""Unit tests for extent arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.extent import Extent, coalesce, total_length


def test_basic_properties():
    extent = Extent(10, 5)
    assert extent.end == 15
    assert extent.contains(10)
    assert extent.contains(14)
    assert not extent.contains(15)
    assert str(extent) == "[10, 15)"


def test_invalid_extents_rejected():
    with pytest.raises(ValueError):
        Extent(-1, 4)
    with pytest.raises(ValueError):
        Extent(0, 0)


def test_overlap_detection():
    a = Extent(0, 10)
    assert a.overlaps(Extent(9, 1))
    assert not a.overlaps(Extent(10, 1))
    assert Extent(5, 5).overlaps(Extent(0, 6))
    assert not Extent(5, 5).overlaps(Extent(0, 5))


def test_containment_and_shift():
    outer = Extent(0, 100)
    inner = Extent(10, 20)
    assert outer.contains_extent(inner)
    assert not inner.contains_extent(outer)
    assert inner.shifted(5) == Extent(15, 20)


def test_coalesce_merges_adjacent_and_overlapping():
    merged = coalesce([Extent(0, 5), Extent(5, 5), Extent(20, 3), Extent(19, 2)])
    assert merged == [Extent(0, 10), Extent(19, 4)]


def test_total_length_counts_distinct_addresses_once():
    assert total_length([Extent(0, 10), Extent(5, 10)]) == 15
    assert total_length([]) == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(1, 50)).map(lambda t: Extent(*t)),
        max_size=30,
    )
)
def test_coalesce_preserves_covered_addresses(extents):
    covered = set()
    for extent in extents:
        covered.update(range(extent.start, extent.end))
    merged = coalesce(extents)
    merged_covered = set()
    for extent in merged:
        merged_covered.update(range(extent.start, extent.end))
    assert covered == merged_covered
    # Merged extents are sorted and pairwise disjoint with gaps between them.
    for left, right in zip(merged, merged[1:]):
        assert left.end < right.start
