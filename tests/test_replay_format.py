"""Round-trip and cross-format tests for the trace file formats (v0/v1/v2).

The cross-format battery saves randomized traces — weird names (whitespace,
``#``, ``%``, unicode, space-adjacent), sizes from 1 up to multi-byte-varint
huge — through every coexisting format and checks that all loaders agree
request-for-request, so the three formats cannot drift apart silently.
"""

import gzip
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.workloads import (
    Request,
    Trace,
    TraceFileSource,
    TraceFormatError,
    iter_trace,
    load_trace,
    save_trace,
    trace_info,
)
from repro.workloads.binary import MAGIC, encode_varint
from repro.workloads.replay import TRACE_FORMAT_VERSION


def build_trace(names, sizes, shuffle_seed, label="t", metadata=None):
    """A well-formed trace inserting every name and deleting a prefix of them
    in a seed-determined order (so deletes never dangle)."""
    requests = [Request.insert(name, size) for name, size in zip(names, sizes)]
    rng = random.Random(shuffle_seed)
    victims = list(names)
    rng.shuffle(victims)
    requests.extend(Request.delete(name) for name in victims[: len(victims) // 2])
    return Trace(requests, label=label, metadata=metadata)


def assert_round_trip(trace, loaded):
    assert len(loaded) == len(trace)
    for original, copy in zip(trace, loaded):
        assert copy.op == original.op
        assert copy.name == str(original.name)
        if original.is_insert:
            assert copy.size == original.size


names_strategy = st.lists(
    st.text(min_size=1, max_size=12),
    min_size=0,
    max_size=12,
    unique=True,
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(names=names_strategy, data=st.data())
def test_v1_round_trip_arbitrary_names(tmp_path_factory, names, data):
    """v1 survives whitespace, newlines, '#', '%', and unicode in names."""
    sizes = [data.draw(st.integers(min_value=1, max_value=512)) for _ in names]
    trace = build_trace(names, sizes, shuffle_seed=data.draw(st.integers(0, 99)))
    path = tmp_path_factory.mktemp("v1") / "trace.txt"
    save_trace(trace, path)
    assert_round_trip(trace, load_trace(path))


@pytest.mark.parametrize(
    "name",
    ["a b", "tab\tname", "line\nbreak", "# comment", "I", "D 5", "100%", "naïve name", " "],
)
def test_v1_round_trips_one_odd_name(tmp_path, name):
    trace = Trace([Request.insert(name, 7), Request.delete(name)], label="odd")
    path = tmp_path / "odd.txt"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert [r.name for r in loaded] == [name, name]


def test_v1_label_and_metadata_round_trip(tmp_path):
    trace = Trace(
        [Request.insert("x", 3)],
        label="churn demo\nwith newline",
        metadata={"seed": 7, "kind": "churn"},
    )
    path = tmp_path / "meta.txt"
    save_trace(trace, path, metadata={"extra": True})
    loaded = load_trace(path)
    assert loaded.label == "churn demo\nwith newline"
    assert loaded.metadata == {"seed": 7, "kind": "churn", "extra": True}
    assert load_trace(path, label="override").label == "override"


@pytest.mark.parametrize("version", [0, 1])
def test_empty_trace_round_trips(tmp_path, version):
    path = tmp_path / f"empty-v{version}.txt"
    save_trace(Trace([], label="empty"), path, version=version)
    loaded = load_trace(path)
    assert len(loaded) == 0
    assert loaded.label == "empty"


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    names=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=8,
        ),
        min_size=0,
        max_size=10,
        unique=True,
    ),
    data=st.data(),
)
def test_v0_round_trip_safe_names(tmp_path_factory, names, data):
    sizes = [data.draw(st.integers(min_value=1, max_value=64)) for _ in names]
    trace = build_trace(names, sizes, shuffle_seed=data.draw(st.integers(0, 99)))
    path = tmp_path_factory.mktemp("v0") / "trace.txt"
    save_trace(trace, path, version=0)
    assert_round_trip(trace, load_trace(path))


@pytest.mark.parametrize("name", ["a b", "tab\tname", "line\nbreak", ""])
def test_v0_save_rejects_unsafe_names_with_clear_error(tmp_path, name):
    trace = Trace([Request.insert(name, 1)])
    with pytest.raises(ValueError, match="v0 trace format"):
        save_trace(trace, tmp_path / "bad.txt", version=0)


def test_v0_legacy_file_still_loads(tmp_path):
    """A file written by the original (pre-versioning) writer parses as v0."""
    path = tmp_path / "legacy.txt"
    path.write_text("# trace legacy-label\nI obj-1 5\nI obj-2 3\nD obj-1\n", encoding="utf-8")
    loaded = load_trace(path)
    assert loaded.label == "legacy-label"
    assert [(r.op, r.name) for r in loaded] == [
        ("insert", "obj-1"),
        ("insert", "obj-2"),
        ("delete", "obj-1"),
    ]
    assert loaded.metadata == {}


def test_v1_empty_name_rejected(tmp_path):
    trace = Trace([Request.insert("", 2)])
    with pytest.raises(ValueError, match="empty name"):
        save_trace(trace, tmp_path / "bad.txt")


def test_unknown_version_header_rejected(tmp_path):
    path = tmp_path / "future.txt"
    path.write_text("# repro-trace v9\nI a 1\n", encoding="utf-8")
    with pytest.raises(ValueError, match="unsupported trace format"):
        load_trace(path)
    with pytest.raises(ValueError, match="version"):
        save_trace(Trace([]), tmp_path / "x.txt", version=9)


def test_malformed_v1_metadata_rejected(tmp_path):
    path = tmp_path / "badmeta.txt"
    path.write_text("# repro-trace v1\n# meta {not json\n", encoding="utf-8")
    with pytest.raises(ValueError, match="metadata"):
        load_trace(path)


def test_non_dict_v1_metadata_rejected(tmp_path):
    path = tmp_path / "intmeta.txt"
    path.write_text("# repro-trace v1\n# meta 5\nI a 3\n", encoding="utf-8")
    with pytest.raises(ValueError, match="JSON object"):
        load_trace(path)


def test_default_format_is_v1(tmp_path):
    path = tmp_path / "default.txt"
    save_trace(Trace([Request.insert("a b", 2)]), path)
    assert TRACE_FORMAT_VERSION == 1
    assert path.read_text(encoding="utf-8").startswith("# repro-trace v1\n")


# ---------------------------------------------------------- cross-format battery
#: Names that historically break line-oriented formats: whitespace (leading,
#: trailing, inner), record-keyword lookalikes, comment/escape characters,
#: unicode, and near-empty names.
WEIRD_NAMES = [
    " ",
    "  ",
    " x",
    "x ",
    "a b",
    "tab\tname",
    "line\nbreak",
    "# comment",
    "# trace fake",
    "# repro-trace v1",
    "I",
    "D",
    "D 5",
    "100%",
    "%41",
    "naïve",
    "名前",
    "обj",
    " sep",
]


def random_weird_trace(seed, requests, huge_sizes=False):
    """A seeded-random well-formed trace: weird + plain names, name reuse
    after deletion (exercises the v2 intern table), sizes including 1 and —
    when asked — multi-byte-varint huge values."""
    rng = random.Random(seed)
    pool = WEIRD_NAMES + [f"obj-{i}" for i in range(40)]
    live = {}
    out = []
    max_size = 10**12 if huge_sizes else 512
    for _ in range(requests):
        if live and (rng.random() < 0.45 or len(live) == len(pool)):
            name = rng.choice(sorted(live))
            live.pop(name)
            out.append(Request.delete(name))
        else:
            name = rng.choice([n for n in pool if n not in live])
            size = rng.choice([1, 2, rng.randint(1, 64), rng.randint(1, max_size)])
            live[name] = size
            out.append(Request.insert(name, size))
    return Trace(out, label=f"weird-{seed}", metadata={"seed": seed})


def requests_of(loaded):
    return [(r.op, r.name, r.size if r.is_insert else 0) for r in loaded]


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("requests", [1, 2, 37, 400])
def test_cross_format_loaders_agree(tmp_path, seed, requests):
    """The same trace through v1, v2, and compressed v2 (plus gzip containers)
    loads back identically under every loader, request for request."""
    trace = random_weird_trace(seed * 101 + requests, requests, huge_sizes=(seed % 2 == 0))
    expected = [(r.op, str(r.name), r.size if r.is_insert else 0) for r in trace]
    paths = {}
    for tag, kwargs in [
        ("v1", {"version": 1}),
        ("v2", {"version": 2}),
        ("v2z", {"version": 2, "compress": True}),
    ]:
        paths[tag] = tmp_path / f"t.{tag}"
        save_trace(trace, paths[tag], **kwargs)
    # gzip container around the text and the binary format
    for tag in ("v1", "v2z"):
        gz = tmp_path / f"t.{tag}.gz"
        gz.write_bytes(gzip.compress(paths[tag].read_bytes()))
        paths[f"{tag}.gz"] = gz
    for tag, path in paths.items():
        loaded = load_trace(path)
        assert requests_of(loaded) == expected, tag
        assert requests_of(iter_trace(path)) == expected, f"iter:{tag}"
        assert loaded.label == trace.label, tag
        assert loaded.metadata == trace.metadata, tag


@pytest.mark.parametrize("seed", range(4))
def test_cross_format_v0_agrees_on_safe_names(tmp_path, seed):
    """Traces restricted to v0-safe names round-trip identically through all
    four formats, including the legacy one."""
    rng = random.Random(seed)
    live = {}
    out = []
    for _ in range(120):
        if live and rng.random() < 0.4:
            name = rng.choice(sorted(live))
            live.pop(name)
            out.append(Request.delete(name))
        else:
            name = f"n{rng.randint(0, 30)}"
            if name in live:
                continue
            live[name] = rng.randint(1, 512)
            out.append(Request.insert(name, live[name]))
    trace = Trace(out, label=f"safe-{seed}")
    expected = [(r.op, str(r.name), r.size if r.is_insert else 0) for r in trace]
    loads = {}
    for version, compress in [(0, False), (1, False), (2, False), (2, True)]:
        path = tmp_path / f"t.v{version}{'z' if compress else ''}"
        save_trace(trace, path, version=version, compress=compress)
        loads[path] = requests_of(load_trace(path))
        assert loads[path] == expected, path
        assert requests_of(iter_trace(path)) == expected, path


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(names=names_strategy, data=st.data())
@pytest.mark.parametrize("compress", [False, True])
def test_v2_round_trip_arbitrary_names(tmp_path_factory, names, data, compress):
    """v2 survives arbitrary unicode names and huge sizes (hypothesis)."""
    sizes = [data.draw(st.integers(min_value=1, max_value=2**40)) for _ in names]
    trace = build_trace(names, sizes, shuffle_seed=data.draw(st.integers(0, 99)))
    path = tmp_path_factory.mktemp("v2") / "trace.bin"
    save_trace(trace, path, version=2, compress=compress)
    assert_round_trip(trace, load_trace(path))


def test_v2_label_metadata_and_override_round_trip(tmp_path):
    trace = Trace(
        [Request.insert("x", 3)],
        label="churn demo\nwith newline",
        metadata={"seed": 7, "kind": "churn"},
    )
    path = tmp_path / "meta.bin"
    save_trace(trace, path, version=2, metadata={"extra": True}, compress=True)
    loaded = load_trace(path)
    assert loaded.label == "churn demo\nwith newline"
    assert loaded.metadata == {"seed": 7, "kind": "churn", "extra": True}
    assert load_trace(path, label="override").label == "override"


@pytest.mark.parametrize("compress", [False, True])
def test_v2_empty_trace_round_trips(tmp_path, compress):
    path = tmp_path / "empty.bin"
    save_trace(Trace([], label="empty"), path, version=2, compress=compress)
    loaded = load_trace(path)
    assert len(loaded) == 0
    assert loaded.label == "empty"


def test_v2_empty_name_round_trips(tmp_path):
    """Unlike the line-oriented formats, v2 has a length field and can carry
    the empty name."""
    trace = Trace([Request.insert("", 2), Request.delete("")])
    path = tmp_path / "noname.bin"
    save_trace(trace, path, version=2)
    assert [r.name for r in load_trace(path)] == ["", ""]


def test_v2_name_coding_stays_compact(tmp_path):
    """Front-coding + live-scoped ids: reinserting a just-deleted long name
    costs a few bytes (full prefix share), deletes cost ~2 bytes — the
    90-byte name must hit the file once, not 51 times."""
    long_name = "a-rather-long-object-name-" + "x" * 64
    trace = Trace(
        [Request.insert(long_name, 5), Request.delete(long_name)] * 50
        + [Request.insert(long_name, 5)]
    )
    path = tmp_path / "intern.bin"
    save_trace(trace, path, version=2)
    assert path.stat().st_size < len(long_name) + 101 * 5 + 64
    assert requests_of(load_trace(path)) == requests_of(trace)


def test_v2_ids_are_recycled_across_object_generations(tmp_path):
    """A long trace whose live set stays tiny must keep its name ids tiny
    too (the LIFO pool recycles them), no matter how many distinct names
    pass through."""
    out = []
    for i in range(3000):
        name = f"generation-{i:07d}"
        out.append(Request.insert(name, 1))
        out.append(Request.delete(name))
    trace = Trace(out)
    path = tmp_path / "recycle.bin"
    save_trace(trace, path, version=2)
    # Every delete must be a 2-byte DELETE_REF (tag + id 0): inserts are
    # front-coded to ~5 bytes, so the whole file stays tiny.
    assert path.stat().st_size < 6000 * 7
    assert requests_of(load_trace(path)) == requests_of(trace)


def test_trace_info_matches_trace_properties(tmp_path):
    trace = random_weird_trace(99, 300)
    path = tmp_path / "t.v2z"
    save_trace(trace, path, version=2, compress=True)
    info = trace_info(path)
    assert info.requests == len(trace)
    assert info.inserts == trace.num_inserts
    assert info.deletes == trace.num_deletes
    assert info.delta == trace.delta
    assert info.peak_volume == trace.peak_volume()
    assert info.total_inserted_volume == trace.total_inserted_volume
    assert info.label == trace.label
    assert info.metadata == trace.metadata
    assert info.version == 2 and info.compressed


def test_trace_file_source_is_re_iterable(tmp_path):
    trace = random_weird_trace(7, 50)
    path = tmp_path / "t.v2"
    save_trace(trace, path, version=2)
    source = TraceFileSource(path)
    assert requests_of(source) == requests_of(source)
    assert source.label == trace.label
    assert source.metadata == trace.metadata


def test_save_compress_requires_v2(tmp_path):
    with pytest.raises(ValueError, match="v2"):
        save_trace(Trace([]), tmp_path / "x", version=1, compress=True)


# ------------------------------------------------------------- v2 error paths
def v2_file(tmp_path, body, version=2, flags=0, header=b"{}"):
    """Hand-assemble a v2 file around ``body`` (uncompressed records)."""
    path = tmp_path / "crafted.bin"
    path.write_bytes(
        MAGIC + encode_varint(version) + bytes([flags]) + encode_varint(len(header)) + header + body
    )
    return path


END = bytes([0x00])


def test_empty_file_rejected_by_every_reader(tmp_path):
    """The empty-file bugfix: a zero-byte file used to fall through format
    detection as an empty v0 trace; now every reader rejects it clearly."""
    path = tmp_path / "empty"
    path.write_bytes(b"")
    for reader in (load_trace, lambda p: list(iter_trace(p)), trace_info):
        with pytest.raises(ValueError, match="empty file"):
            reader(path)
    gz = tmp_path / "empty.gz"
    gz.write_bytes(gzip.compress(b""))
    with pytest.raises(ValueError, match="empty file"):
        load_trace(gz)


def test_v2_truncation_detected_at_every_cut(tmp_path):
    """Cutting a valid v2 file anywhere must raise, never yield a prefix."""
    trace = random_weird_trace(3, 40)
    for compress in (False, True):
        path = tmp_path / f"whole{compress}.bin"
        save_trace(trace, path, version=2, compress=compress)
        data = path.read_bytes()
        for cut in {1, 4, len(data) // 4, len(data) // 2, len(data) - 1}:
            clipped = tmp_path / f"cut{compress}-{cut}.bin"
            clipped.write_bytes(data[:cut])
            with pytest.raises(ValueError):
                list(iter_trace(clipped))
            with pytest.raises(ValueError):
                load_trace(clipped)


def test_v2_compressed_body_truncation_raises_with_path_at_every_cut(tmp_path):
    """Clipping a zlib-compressed v2 body at *any* byte must raise a
    :class:`TraceFormatError` naming the file — never a bare ``zlib.error``
    or a silent prefix."""
    whole = tmp_path / "whole.v2z"
    save_trace(random_weird_trace(3, 30), whole, version=2, compress=True)
    data = whole.read_bytes()
    clipped = tmp_path / "clipped.v2z"
    for cut in range(1, len(data)):
        clipped.write_bytes(data[:cut])
        with pytest.raises(TraceFormatError, match="clipped"):
            list(iter_trace(clipped))
        with pytest.raises(TraceFormatError, match="clipped"):
            trace_info(clipped)


def test_v2_bad_magic_rejected(tmp_path):
    path = tmp_path / "badmagic.bin"
    path.write_bytes(b"\x93RPTRACX" + b"\x00" * 16)
    with pytest.raises(ValueError, match="bad magic"):
        load_trace(path)


def test_v2_unknown_version_rejected(tmp_path):
    path = v2_file(tmp_path, END + encode_varint(0), version=4)
    with pytest.raises(ValueError, match="unsupported binary trace version 4"):
        load_trace(path)
    with pytest.raises(ValueError, match="version"):
        save_trace(Trace([]), tmp_path / "x.bin", version=9)


def test_v2_unknown_flags_rejected(tmp_path):
    path = v2_file(tmp_path, END + encode_varint(0), flags=0x82)
    with pytest.raises(ValueError, match="unknown flag bits"):
        load_trace(path)


def test_v2_unknown_record_tag_rejected(tmp_path):
    path = v2_file(tmp_path, bytes([0x7F]) + END + encode_varint(0))
    with pytest.raises(ValueError, match="unknown record tag 0x7f"):
        load_trace(path)


def test_v2_unbound_name_reference_rejected(tmp_path):
    # INSERT_REF of id 5 with nothing live
    body = bytes([0x02]) + encode_varint(5) + encode_varint(1) + END + encode_varint(1)
    with pytest.raises(ValueError, match="unbound"):
        load_trace(v2_file(tmp_path, body))
    # DELETE_REF of an id that was never bound
    body = bytes([0x03]) + encode_varint(0) + END + encode_varint(1)
    with pytest.raises(ValueError, match="unbound"):
        load_trace(v2_file(tmp_path, body))


def insert_new(name, size):
    raw = name.encode("utf-8")
    return bytes([0x01]) + encode_varint(0) + encode_varint(len(raw)) + raw + encode_varint(size)


def test_v2_record_count_mismatch_rejected(tmp_path):
    body = insert_new("a", 3) + END + encode_varint(9)
    with pytest.raises(ValueError, match="count mismatch"):
        load_trace(v2_file(tmp_path, body))


def test_v2_overlong_name_prefix_rejected(tmp_path):
    # front-coded prefix longer than the previous name (which is empty)
    body = bytes([0x01]) + encode_varint(7) + encode_varint(0) + encode_varint(1)
    body += END + encode_varint(1)
    with pytest.raises(ValueError, match="prefix length"):
        load_trace(v2_file(tmp_path, body))


def test_v2_trailing_data_rejected(tmp_path):
    path = v2_file(tmp_path, END + encode_varint(0) + b"junk")
    with pytest.raises(ValueError, match="trailing data"):
        load_trace(path)


def test_v2_malformed_header_block_rejected(tmp_path):
    path = v2_file(tmp_path, END + encode_varint(0), header=b"{not json")
    with pytest.raises(ValueError, match="header block"):
        load_trace(path)
    path = v2_file(tmp_path, END + encode_varint(0), header=b"[1]")
    with pytest.raises(ValueError, match="JSON object"):
        load_trace(path)


def test_binary_garbage_rejected_with_clear_error(tmp_path):
    path = tmp_path / "garbage.bin"
    path.write_bytes(bytes(range(200, 256)) * 5)
    with pytest.raises(ValueError, match="not a valid trace"):
        load_trace(path)


def test_error_is_trace_format_error_subclass():
    assert issubclass(TraceFormatError, ValueError)


def test_text_header_lines_after_records_rejected(tmp_path):
    """Header-lookalike lines past the leading block fail loudly instead of
    silently dropping a label or metadata the old whole-file reader kept."""
    v1 = tmp_path / "late-meta.txt"
    v1.write_text('# repro-trace v1\nI a 3\n# meta {"seed": 7}\n', encoding="utf-8")
    with pytest.raises(ValueError, match="after\\s+.*the first record"):
        load_trace(v1)
    v0 = tmp_path / "late-label.txt"
    v0.write_text("I a 3\n# trace late\nD a\n", encoding="utf-8")
    with pytest.raises(ValueError, match="top of the file"):
        load_trace(v0)
    # plain comments after records stay fine
    ok = tmp_path / "comment.txt"
    ok.write_text("# trace ok\nI a 3\n# just a comment\nD a\n", encoding="utf-8")
    assert len(load_trace(ok)) == 2
