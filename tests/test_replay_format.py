"""Round-trip tests for the versioned trace file format (v0 and v1)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.workloads import Request, Trace, load_trace, save_trace
from repro.workloads.replay import TRACE_FORMAT_VERSION


def build_trace(names, sizes, shuffle_seed, label="t", metadata=None):
    """A well-formed trace inserting every name and deleting a prefix of them
    in a seed-determined order (so deletes never dangle)."""
    requests = [Request.insert(name, size) for name, size in zip(names, sizes)]
    rng = random.Random(shuffle_seed)
    victims = list(names)
    rng.shuffle(victims)
    requests.extend(Request.delete(name) for name in victims[: len(victims) // 2])
    return Trace(requests, label=label, metadata=metadata)


def assert_round_trip(trace, loaded):
    assert len(loaded) == len(trace)
    for original, copy in zip(trace, loaded):
        assert copy.op == original.op
        assert copy.name == str(original.name)
        if original.is_insert:
            assert copy.size == original.size


names_strategy = st.lists(
    st.text(min_size=1, max_size=12),
    min_size=0,
    max_size=12,
    unique=True,
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(names=names_strategy, data=st.data())
def test_v1_round_trip_arbitrary_names(tmp_path_factory, names, data):
    """v1 survives whitespace, newlines, '#', '%', and unicode in names."""
    sizes = [data.draw(st.integers(min_value=1, max_value=512)) for _ in names]
    trace = build_trace(names, sizes, shuffle_seed=data.draw(st.integers(0, 99)))
    path = tmp_path_factory.mktemp("v1") / "trace.txt"
    save_trace(trace, path)
    assert_round_trip(trace, load_trace(path))


@pytest.mark.parametrize(
    "name",
    ["a b", "tab\tname", "line\nbreak", "# comment", "I", "D 5", "100%", "naïve name", " "],
)
def test_v1_round_trips_one_odd_name(tmp_path, name):
    trace = Trace([Request.insert(name, 7), Request.delete(name)], label="odd")
    path = tmp_path / "odd.txt"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert [r.name for r in loaded] == [name, name]


def test_v1_label_and_metadata_round_trip(tmp_path):
    trace = Trace(
        [Request.insert("x", 3)],
        label="churn demo\nwith newline",
        metadata={"seed": 7, "kind": "churn"},
    )
    path = tmp_path / "meta.txt"
    save_trace(trace, path, metadata={"extra": True})
    loaded = load_trace(path)
    assert loaded.label == "churn demo\nwith newline"
    assert loaded.metadata == {"seed": 7, "kind": "churn", "extra": True}
    assert load_trace(path, label="override").label == "override"


@pytest.mark.parametrize("version", [0, 1])
def test_empty_trace_round_trips(tmp_path, version):
    path = tmp_path / f"empty-v{version}.txt"
    save_trace(Trace([], label="empty"), path, version=version)
    loaded = load_trace(path)
    assert len(loaded) == 0
    assert loaded.label == "empty"


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    names=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=8,
        ),
        min_size=0,
        max_size=10,
        unique=True,
    ),
    data=st.data(),
)
def test_v0_round_trip_safe_names(tmp_path_factory, names, data):
    sizes = [data.draw(st.integers(min_value=1, max_value=64)) for _ in names]
    trace = build_trace(names, sizes, shuffle_seed=data.draw(st.integers(0, 99)))
    path = tmp_path_factory.mktemp("v0") / "trace.txt"
    save_trace(trace, path, version=0)
    assert_round_trip(trace, load_trace(path))


@pytest.mark.parametrize("name", ["a b", "tab\tname", "line\nbreak", ""])
def test_v0_save_rejects_unsafe_names_with_clear_error(tmp_path, name):
    trace = Trace([Request.insert(name, 1)])
    with pytest.raises(ValueError, match="v0 trace format"):
        save_trace(trace, tmp_path / "bad.txt", version=0)


def test_v0_legacy_file_still_loads(tmp_path):
    """A file written by the original (pre-versioning) writer parses as v0."""
    path = tmp_path / "legacy.txt"
    path.write_text("# trace legacy-label\nI obj-1 5\nI obj-2 3\nD obj-1\n", encoding="utf-8")
    loaded = load_trace(path)
    assert loaded.label == "legacy-label"
    assert [(r.op, r.name) for r in loaded] == [
        ("insert", "obj-1"),
        ("insert", "obj-2"),
        ("delete", "obj-1"),
    ]
    assert loaded.metadata == {}


def test_v1_empty_name_rejected(tmp_path):
    trace = Trace([Request.insert("", 2)])
    with pytest.raises(ValueError, match="empty name"):
        save_trace(trace, tmp_path / "bad.txt")


def test_unknown_version_header_rejected(tmp_path):
    path = tmp_path / "future.txt"
    path.write_text("# repro-trace v9\nI a 1\n", encoding="utf-8")
    with pytest.raises(ValueError, match="unsupported trace format"):
        load_trace(path)
    with pytest.raises(ValueError, match="version"):
        save_trace(Trace([]), tmp_path / "x.txt", version=9)


def test_malformed_v1_metadata_rejected(tmp_path):
    path = tmp_path / "badmeta.txt"
    path.write_text("# repro-trace v1\n# meta {not json\n", encoding="utf-8")
    with pytest.raises(ValueError, match="metadata"):
        load_trace(path)


def test_non_dict_v1_metadata_rejected(tmp_path):
    path = tmp_path / "intmeta.txt"
    path.write_text("# repro-trace v1\n# meta 5\nI a 3\n", encoding="utf-8")
    with pytest.raises(ValueError, match="JSON object"):
        load_trace(path)


def test_default_format_is_v1(tmp_path):
    path = tmp_path / "default.txt"
    save_trace(Trace([Request.insert("a b", 2)]), path)
    assert TRACE_FORMAT_VERSION == 1
    assert path.read_text(encoding="utf-8").startswith("# repro-trace v1\n")
