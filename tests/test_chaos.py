"""End-to-end chaos schedules: distributed sweeps under injected faults.

The contract under test (ISSUE 9's acceptance bar): for every armed
single-fault site — including crash-the-process at every site — and for a
battery of seeded multi-fault schedules, a distributed sweep driven by the
chaos harness converges, after resume/merge, to a ``results.json`` whose
records are identical to a fault-free run (timing/host fields aside), with
no torn artifact, no undetectable trace truncation, and no stuck lease.
"""

import json
import os

import pytest

from repro.campaign import CampaignSpec, load_results
from repro.cli import main
from repro.faults import FaultPlan, FaultRule, SITES, deactivate_faults
from repro.faults import chaos
from repro.workloads import trace_info


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    deactivate_faults()


def chaos_spec(tmp_path, version=3, cells=1):
    """A tiny spec that exercises *every* fault site: the checkpointed
    allocator hits ``checkpoint.persist``, the trace recorder hits the
    ``trace.write.*`` sites, the queue/artifact sites fire on any sweep."""
    workloads = [
        {"kind": "churn", "requests": 40, "target_live": 10},
        {"kind": "grow_shrink", "requests": 30},
    ][: max(1, cells)]
    return CampaignSpec.from_dict(
        {
            "name": f"chaos-v{version}",
            "seed": 13,
            "workloads": workloads,
            "allocators": [{"kind": "checkpointed"}],
            "costs": ["linear"],
            "observers": [
                {
                    "kind": "trace_recorder",
                    "path": str(tmp_path / ("rec-{cell}.v%d" % version)),
                    "version": version,
                }
            ],
        }
    )


def assert_all_passed(report):
    failed = [
        f"{schedule.label}: {schedule.detail or 'records differ'} "
        f"(rounds={schedule.rounds}, exits={schedule.worker_exits})"
        for schedule in report.failed
    ]
    assert not failed, "chaos schedules failed:\n" + "\n".join(failed)


# ---------------------------------------------------------------- the battery
def test_single_fault_battery_every_site_raise_and_crash(tmp_path):
    """One raise and one crash schedule per armed site, all converging."""
    spec = chaos_spec(tmp_path)
    # serve.* (and the session-snapshot site) never fire in a campaign
    # sweep; their crash/restore coverage lives in tests/test_serve.py.
    sites = sorted(
        site
        for site in SITES
        if site != "trace.write.body"
        and not site.startswith("serve.")
        and site != "checkpoint.snapshot"
    )
    plans = chaos.single_fault_plans(sites=sites)
    assert len(plans) == 2 * len(sites)
    report = chaos.run_chaos(spec, plans, tmp_path / "chaos")
    assert len(report.schedules) == len(plans)
    assert_all_passed(report)
    # Crash schedules really did kill a worker (exit code 86), and the
    # lease it died holding was recovered, not stuck.
    crashed = [
        s for s in report.schedules
        if s.plan.rules[0].action == "crash" and 86 in s.worker_exits
    ]
    assert crashed, "no crash schedule actually killed a worker"
    for schedule in report.schedules:
        assert os.listdir(os.path.join(schedule.directory, "leases")) == []
    # The converged trace files are valid end to end — no silent truncation.
    info = trace_info(tmp_path / "rec-0.v3")
    assert info.requests == 40


def test_single_fault_battery_v2_trace_body(tmp_path):
    """The v2 buffered-body write site, via a v2 trace recorder."""
    spec = chaos_spec(tmp_path, version=2)
    report = chaos.run_chaos(
        spec,
        chaos.single_fault_plans(sites=["trace.write.body", "trace.write.trailer"]),
        tmp_path / "chaos",
    )
    assert_all_passed(report)
    assert trace_info(tmp_path / "rec-0.v2").requests == 40


def test_seeded_multi_fault_schedules_converge(tmp_path):
    """>= 20 seeded multi-fault schedules, two workers each."""
    spec = chaos_spec(tmp_path, cells=2)
    plans = [chaos.seeded_plan(seed) for seed in range(20)]
    report = chaos.run_chaos(spec, plans, tmp_path / "chaos", workers=2)
    assert len(report.schedules) == 20
    assert_all_passed(report)


def test_seeded_plans_are_deterministic():
    for seed in range(10):
        assert chaos.seeded_plan(seed).to_dict() == chaos.seeded_plan(seed).to_dict()
    distinct = {json.dumps(chaos.seeded_plan(seed).to_dict()) for seed in range(20)}
    assert len(distinct) > 10


def test_comparable_records_strip_only_volatile_fields():
    record = {"cell_id": "c", "status": "ok", "elapsed_seconds": 1.5,
              "worker": "w-1", "resources": {}, "max_footprint": 9}
    [stripped] = chaos.comparable_records([record])
    assert stripped == {"cell_id": "c", "status": "ok", "max_footprint": 9}


# ------------------------------------------------------------------------ CLI
def test_cli_chaos_sweep_smoke_and_diff_gate(tmp_path, capsys):
    """The CI smoke in miniature: explicit plan + seeded schedules, then the
    sweep-diff regression gate against the fault-free baseline."""
    spec = chaos_spec(tmp_path)
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
    plan_path = tmp_path / "plan.json"
    FaultPlan(
        rules=[
            FaultRule(site="queue.dequeue", action="crash"),
            FaultRule(site="queue.lease.steal", action="raise"),
        ],
        seed=1,
    ).to_json(plan_path)
    out = tmp_path / "chaos-out"
    assert (
        main(
            [
                "chaos", "sweep", str(spec_path),
                "--faults", str(plan_path),
                "--seeds", "2",
                "--workers", "2",
                "--out", str(out),
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "3/3 schedule(s) converged" in captured.out
    baseline = load_results(out / "baseline" / "results.json")
    assert baseline["cells"] == 1
    # Every schedule directory holds a mergeable artifact identical to the
    # baseline: the sweep-diff CI gate passes against each one.
    schedules = sorted(d for d in os.listdir(out) if d.startswith("schedule-"))
    assert len(schedules) == 3
    for schedule in schedules:
        assert (
            main(
                [
                    "sweep", "diff",
                    str(out / "baseline"),
                    str(out / schedule),
                    "--fail-on-regression",
                ]
            )
            == 0
        )
    capsys.readouterr()
