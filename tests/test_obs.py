"""Tests for the telemetry substrate: spans, counters, resources, reports."""

import json
import os

import pytest

from repro.allocators import FirstFitAllocator
from repro.cli import main
from repro.engine import SimulationEngine, TraceRecorderObserver
from repro.obs import (
    NULL_COUNTER,
    NULL_SPAN,
    JsonlSink,
    MemorySink,
    Telemetry,
    configure_telemetry,
    format_bytes,
    format_count,
    format_duration,
    format_rate,
    get_telemetry,
    load_events,
    obs_report,
    reset_telemetry,
    resource_record,
    snapshot_resources,
    use_telemetry,
    validate_events,
)
from repro.storage.address_space import AddressSpace
from repro.storage.gap_index import GapIndex
from repro.workloads import UniformSizes, churn_trace

TRACE = churn_trace(400, UniformSizes(1, 32), target_live=40, seed=9)


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with the default disabled session."""
    reset_telemetry()
    yield
    reset_telemetry()


# ------------------------------------------------------------------ formatting
def test_format_duration_tiers():
    assert format_duration(0.000002) == "2us"
    assert format_duration(0.0042) == "4.2ms"
    assert format_duration(1.5) == "1.50s"
    assert format_duration(95.0) == "1m35.0s"


def test_format_bytes_binary_tiers():
    assert format_bytes(512) == "512B"
    assert format_bytes(2048) == "2.0KiB"
    assert format_bytes(3 * 1024 * 1024) == "3.0MiB"


def test_format_count_and_rate():
    assert format_count(999) == "999"
    assert format_count(1500) == "1.5k"
    assert format_count(2_000_000) == "2.0M"
    assert format_rate(1500) == "1.5k/s"


# ---------------------------------------------------------------- off == no-op
def test_disabled_session_hands_out_shared_singletons():
    telemetry = Telemetry()
    assert telemetry.span("x") is NULL_SPAN
    assert telemetry.counter("x") is NULL_COUNTER
    NULL_COUNTER.add(5)
    assert NULL_COUNTER.value == 0
    telemetry.add("x", 3)
    telemetry.gauge("x", 3)
    telemetry.event("x")
    assert telemetry.counter_values() == {}
    assert telemetry.gauge_values() == {}


def test_disabled_replay_creates_no_registry_and_no_file(tmp_path):
    """The structural half of the <=2% guard: a replay with telemetry off
    must leave zero observable telemetry state behind."""
    telemetry = get_telemetry()
    assert not telemetry.enabled
    allocator = FirstFitAllocator()
    SimulationEngine(allocator, []).run(TRACE)
    assert telemetry.counter_values() == {}
    assert telemetry.gauge_values() == {}
    # Hot classes bind no counter objects at all while off.
    assert AddressSpace()._c_probes is None
    assert GapIndex()._c_queries is None
    assert list(tmp_path.iterdir()) == []


# -------------------------------------------------------------------- spans
def test_span_nesting_builds_slash_paths():
    sink = MemorySink()
    telemetry = Telemetry(enabled=True, sink=sink)
    with telemetry.span("outer"):
        with telemetry.span("inner", kind="unit"):
            pass
    paths = [(e["path"], e["depth"]) for e in sink.events if e["ev"] == "span"]
    assert paths == [("outer/inner", 1), ("outer", 0)]
    inner = sink.events[0]
    assert inner["attrs"] == {"kind": "unit"}
    assert inner["dur"] >= 0


def test_span_exception_safety_records_error_and_unwinds_stack():
    sink = MemorySink()
    telemetry = Telemetry(enabled=True, sink=sink)
    with pytest.raises(RuntimeError):
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                raise RuntimeError("boom")
    spans = {e["name"]: e for e in sink.events if e["ev"] == "span"}
    assert spans["inner"]["error"] == "RuntimeError"
    assert spans["outer"]["error"] == "RuntimeError"
    assert telemetry._stack == []
    # The session is still usable afterwards, at depth zero.
    with telemetry.span("after"):
        pass
    assert sink.events[-1]["path"] == "after"


def test_flush_emits_deltas_and_resets_counters():
    sink = MemorySink()
    telemetry = Telemetry(enabled=True, sink=sink)
    telemetry.add("hits", 3)
    telemetry.flush()
    telemetry.add("hits", 2)
    telemetry.flush()
    values = [e["value"] for e in sink.events if e["ev"] == "counter"]
    assert values == [3, 2]
    assert telemetry.counter_values() == {"hits": 0}


# ------------------------------------------------------------------- sinks
def test_jsonl_sink_round_trips_through_load_and_validate(tmp_path):
    path = tmp_path / "t.jsonl"
    telemetry = configure_telemetry(path=path)
    try:
        with telemetry.span("work", step=1):
            telemetry.add("ops", 7)
        telemetry.gauge("rate", 3.5)
        telemetry.event("milestone", note="done")
    finally:
        telemetry.close()
        reset_telemetry()
    events = load_events(path)
    assert validate_events(events) == []
    kinds = [e["ev"] for e in events]
    assert kinds[0] == "meta"
    assert "span" in kinds and "counter" in kinds and "gauge" in kinds
    assert {e["name"] for e in events if e["ev"] == "counter"} == {"ops"}


def test_validate_events_flags_schema_violations():
    problems = validate_events(
        [
            {"ev": "span", "name": "x", "t": 0.0},  # missing path/depth/...
            {"ev": "nope", "name": "x", "t": 0.0},
            {"ev": "counter", "name": 3, "t": "later", "value": 1},
        ]
    )
    assert len(problems) >= 4


# ------------------------------------------------------- engine instrumentation
def test_enabled_replay_populates_engine_and_substrate_counters():
    telemetry = Telemetry(enabled=True)
    with use_telemetry(telemetry):
        allocator = FirstFitAllocator()
        SimulationEngine(allocator, []).run(TRACE)
    counters = telemetry.counter_values()
    assert counters["engine.requests"] == len(TRACE)
    assert counters["engine.replays"] == 1
    assert counters["gap_index.policy_queries"] > 0
    assert counters["address_space.audit_probes"] > 0
    assert telemetry.gauge_values()["engine.requests_per_sec"] > 0


def test_engine_abort_emits_abort_event():
    def poisoned():
        yield from TRACE[: len(TRACE) // 2]
        raise RuntimeError("trace went bad")

    sink = MemorySink()
    telemetry = Telemetry(enabled=True, sink=sink)
    with use_telemetry(telemetry):
        with pytest.raises(RuntimeError):
            SimulationEngine(FirstFitAllocator(), []).run(poisoned())
    aborts = [e for e in sink.events if e["ev"] == "abort"]
    assert len(aborts) == 1
    assert aborts[0]["name"] == "engine.replay"
    assert aborts[0]["error_type"] == "RuntimeError"
    assert "trace went bad" in aborts[0]["error"]


def test_trace_io_counters_and_recorder_write_seconds(tmp_path):
    path = tmp_path / "rec.v2"
    telemetry = Telemetry(enabled=True)
    with use_telemetry(telemetry):
        recorder = TraceRecorderObserver(str(path))
        SimulationEngine(FirstFitAllocator(), [recorder]).run(TRACE)
    counters = telemetry.counter_values()
    assert counters["trace_io.encode_records"] == len(TRACE)
    assert counters["trace_io.encode_bytes"] == os.path.getsize(path)
    assert counters["trace_recorder.requests"] == len(TRACE)
    assert counters["trace_recorder.write_seconds"] >= 0
    assert recorder.export()["write_seconds"] == round(recorder.write_seconds, 6)


def test_recorder_export_omits_write_seconds_when_telemetry_is_off(tmp_path):
    recorder = TraceRecorderObserver(str(tmp_path / "rec.v2"))
    SimulationEngine(FirstFitAllocator(), [recorder]).run(TRACE)
    assert "write_seconds" not in recorder.export()


# ----------------------------------------------------------------- resources
def test_resource_record_shapes_and_bounds():
    before = snapshot_resources()
    sum(range(200_000))
    record = resource_record(before, snapshot_resources())
    assert set(record) == {
        "cpu_user_seconds",
        "cpu_system_seconds",
        "cpu_seconds",
        "max_rss_kb",
        "gc_collections",
        "gc_collected",
        "gc_uncollectable",
    }
    assert record["cpu_seconds"] >= 0
    assert record["max_rss_kb"] > 0


# ------------------------------------------------------------- campaign + CLI
SPEC = {
    "name": "obs",
    "seed": 3,
    "workloads": [{"kind": "churn", "requests": 200, "target_live": 25}],
    "allocators": ["first_fit", {"kind": "cost_oblivious", "epsilon": 0.5}],
    "costs": ["linear"],
    "devices": ["ram"],
}


def _write_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


@pytest.mark.parametrize("jobs", ["1", "2"])
def test_sweep_records_resources_per_cell(tmp_path, jobs):
    spec = _write_spec(tmp_path)
    out = tmp_path / "out"
    assert main(["sweep", str(spec), "--jobs", jobs, "--out", str(out), "--quiet"]) == 0
    document = json.loads((out / "results.json").read_text())
    for record in document["records"]:
        resources = record["resources"]
        assert resources["cpu_seconds"] >= 0
        assert resources["max_rss_kb"] > 0
        # Telemetry was off: no per-cell capture, no profile dumps.
        assert "telemetry" not in record
        assert "profile" not in record


def test_sweep_telemetry_writes_valid_jsonl_and_reports(tmp_path, capsys):
    spec = _write_spec(tmp_path)
    out = tmp_path / "out"
    assert (
        main(
            [
                "sweep",
                str(spec),
                "--telemetry",
                "--profile",
                "--out",
                str(out),
                "--quiet",
            ]
        )
        == 0
    )
    capsys.readouterr()

    events = load_events(out / "telemetry.jsonl")
    assert validate_events(events) == []
    cells = {e.get("cell") for e in events if "cell" in e}
    assert len(cells) == 2
    assert any(e["ev"] == "span" and "cell" in e for e in events)
    assert any(e["ev"] == "counter" and "cell" in e for e in events)
    assert any(e["ev"] == "resources" for e in events)
    assert any(e["ev"] == "span" and e["name"] == "sweep.run" for e in events)

    document = json.loads((out / "results.json").read_text())
    for record in document["records"]:
        assert record["telemetry"]["counters"]["engine.requests"] == 200
        assert record["telemetry"]["spans"]
        assert os.path.exists(record["profile"])

    # repro obs report renders span trees, resources, and counter totals.
    assert main(["obs", "report", str(out / "telemetry.jsonl"), "--check"]) == 0
    rendered = capsys.readouterr().out
    assert "top spans by total time" in rendered
    assert "counter totals" in rendered
    assert "--- cell " in rendered
    assert "peak rss" in rendered

    # ... and the sweep report gains the per-cell resource view.
    assert main(["sweep", "report", str(out), "--telemetry"]) == 0
    rendered = capsys.readouterr().out
    assert "per-cell resources" in rendered
    assert "--- telemetry " in rendered


def test_obs_report_check_rejects_malformed_logs(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ev": "span", "name": "x", "t": 0.0}\n')
    assert main(["obs", "report", str(bad), "--check"]) == 1
    assert main(["obs", "report", str(tmp_path / "missing.jsonl")]) == 2


def test_obs_report_renders_cell_filter(tmp_path):
    events = [
        {"ev": "meta", "name": "session", "t": 0.0, "attrs": {"pid": 1}},
        {"ev": "span", "name": "cell", "t": 1.0, "path": "cell", "depth": 0,
         "start": 0.0, "dur": 1.0, "cell": "a"},
        {"ev": "span", "name": "cell", "t": 2.0, "path": "cell", "depth": 0,
         "start": 0.0, "dur": 1.0, "cell": "b"},
    ]
    full = obs_report(events)
    assert "--- cell a ---" in full and "--- cell b ---" in full
    only_a = obs_report(events, cell_filter="a")
    assert "--- cell a ---" in only_a and "--- cell b ---" not in only_a


# -------------------------------------------------------------- bench artifacts
def test_bench_artifact_write_and_format(tmp_path, monkeypatch):
    from benchmarks import bench_artifact

    monkeypatch.setenv("REPRO_BENCH_ARTIFACT_DIR", str(tmp_path))
    bench_artifact.reset_metrics()
    try:
        bench_artifact.record_metric("unit", "elapsed_seconds", 1.25, "seconds")
        bench_artifact.record_metric("unit", "throughput", 4000, "requests/s")
        paths = bench_artifact.write_artifacts()
        assert paths == [str(tmp_path / "BENCH_unit.json")]
        document = json.loads((tmp_path / "BENCH_unit.json").read_text())
        assert document["format"] == "repro-bench-artifact"
        assert document["version"] == 1
        assert document["bench"] == "unit"
        assert document["metrics"]["elapsed_seconds"] == {
            "value": 1.25,
            "unit": "seconds",
        }
        assert document["env"]["python"]
    finally:
        bench_artifact.reset_metrics()
