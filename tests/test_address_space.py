"""Unit tests for the auditing address space."""

import pytest

from repro.storage.address_space import AddressSpace, OverlapError
from repro.storage.extent import Extent


def test_place_move_remove_roundtrip():
    space = AddressSpace()
    space.place("a", Extent(0, 10))
    space.place("b", Extent(10, 5))
    assert space.footprint() == 15
    assert space.volume() == 15
    old = space.move("b", Extent(20, 5))
    assert old == Extent(10, 5)
    assert space.footprint() == 25
    removed = space.remove("a")
    assert removed == Extent(0, 10)
    assert space.volume() == 5
    assert "a" not in space and "b" in space


def test_overlap_detection_on_place_and_move():
    space = AddressSpace()
    space.place("a", Extent(0, 10))
    with pytest.raises(OverlapError):
        space.place("b", Extent(5, 2))
    space.place("b", Extent(10, 10))
    with pytest.raises(OverlapError):
        space.move("b", Extent(9, 5))
    # Moving over your own old position is allowed (Section 2 semantics).
    space.move("b", Extent(15, 10))
    assert space.extent_of("b") == Extent(15, 10)


def test_duplicate_and_missing_names():
    space = AddressSpace()
    space.place("a", Extent(0, 1))
    with pytest.raises(KeyError):
        space.place("a", Extent(5, 1))
    with pytest.raises(KeyError):
        space.move("missing", Extent(0, 1))
    with pytest.raises(KeyError):
        space.remove("missing")


def test_footprint_shrinks_when_last_object_leaves():
    space = AddressSpace()
    space.place("a", Extent(0, 10))
    space.place("b", Extent(50, 10))
    assert space.footprint() == 60
    space.remove("b")
    assert space.footprint() == 10
    space.move("a", Extent(100, 10))
    assert space.footprint() == 110
    space.remove("a")
    assert space.footprint() == 0


def test_unvalidated_space_skips_overlap_checks_but_keeps_accounting():
    space = AddressSpace(validate=False)
    space.place("a", Extent(0, 10))
    space.place("b", Extent(5, 10))  # no error in fast mode
    assert space.volume() == 20
    with pytest.raises(OverlapError):
        space.verify_disjoint()


def test_free_gaps_and_utilization():
    space = AddressSpace()
    space.place("a", Extent(0, 5))
    space.place("b", Extent(10, 5))
    gaps = space.free_gaps()
    assert gaps == [Extent(5, 5)]
    assert space.utilization() == pytest.approx(10 / 15)
    assert AddressSpace().utilization() == 1.0


def test_snapshot_is_a_copy():
    space = AddressSpace()
    space.place("a", Extent(0, 5))
    snapshot = space.snapshot()
    snapshot["a"] = Extent(100, 5)
    assert space.extent_of("a") == Extent(0, 5)


def test_end_heap_is_compacted_on_delete_heavy_churn():
    """A long insert/delete churn trace must not grow the lazy footprint
    heap without bound: stale entries are compacted away once they exceed
    2x the live ones, so the heap stays proportional to the live set."""
    space = AddressSpace()
    for round_number in range(5000):
        # Two live objects at a time, with ever-changing end addresses so
        # every round pushes fresh heap entries and strands the old ones.
        space.place("a", Extent(round_number, 1))
        space.place("b", Extent(round_number + 5, 1))
        assert space.footprint() == round_number + 6
        space.remove("a")
        space.remove("b")
    assert space.footprint() == 0
    assert len(space._end_heap) <= 128  # bounded, not the 10k pushes made
    # The compacted heap keeps answering correctly as objects come back.
    space.place("c", Extent(7, 3))
    assert space.footprint() == 10


def test_end_heap_compaction_preserves_duplicate_end_counts():
    """Several live extents sharing one end address survive compaction:
    the end stays in the heap until the last of them is removed."""
    space = AddressSpace(validate=False)
    for index in range(3):
        space.place(("dup", index), Extent(90, 10))  # all end at 100
    # Churn enough distinct ends to trigger at least one compaction.
    for round_number in range(200):
        space.place("tmp", Extent(200 + round_number, 5))
        space.remove("tmp")
    for index in range(3):
        assert space.footprint() == 100
        space.remove(("dup", index))
    assert space.footprint() == 0


# ------------------------------------------------------------ property tests
def _naive_footprint(extents):
    return max((extent.end for extent in extents.values()), default=0)


def _naive_volume(extents):
    return sum(extent.length for extent in extents.values())


@pytest.mark.parametrize("seed", range(5))
def test_incremental_footprint_and_volume_match_naive_recomputation(seed):
    """Random place/move/remove sequences: the lazy-heap footprint and the
    running volume counter must always agree with a from-scratch recompute."""
    import random

    rng = random.Random(seed)
    space = AddressSpace(validate=False)  # overlaps allowed: stresses the heap
    mirror = {}
    next_id = 0
    for step in range(400):
        ops = ["place"]
        if mirror:
            ops += ["move", "remove", "remove"]
        op = rng.choice(ops)
        if op == "place":
            name = f"obj-{next_id}"
            next_id += 1
            extent = Extent(rng.randint(0, 500), rng.randint(1, 64))
            space.place(name, extent)
            mirror[name] = extent
        elif op == "move":
            name = rng.choice(list(mirror))
            extent = Extent(rng.randint(0, 500), mirror[name].length)
            space.move(name, extent)
            mirror[name] = extent
        else:
            name = rng.choice(list(mirror))
            removed = space.remove(name)
            assert removed == mirror.pop(name)
        assert space.footprint() == _naive_footprint(mirror), f"step {step}"
        assert space.volume() == _naive_volume(mirror), f"step {step}"
        assert len(space) == len(mirror)
    # Drain everything: the footprint must collapse back to zero.
    for name in list(mirror):
        space.remove(name)
        del mirror[name]
        assert space.footprint() == _naive_footprint(mirror)
    assert space.footprint() == 0 and space.volume() == 0
