"""Tests for the baseline allocators."""

import random

import pytest

from repro.allocators import (
    AppendOnlyAllocator,
    BASELINE_ALLOCATORS,
    BestFitAllocator,
    BuddyAllocator,
    FirstFitAllocator,
    IdealPackingReallocator,
    LoggingCompactingReallocator,
    NextFitAllocator,
    SizeClassGapReallocator,
    WorstFitAllocator,
)
from repro.core.base import AllocationError
from repro.workloads import churn_trace, fragmentation_attack_trace

ALL_BASELINES = list(BASELINE_ALLOCATORS) + [IdealPackingReallocator]


@pytest.mark.parametrize("allocator_class", ALL_BASELINES, ids=lambda c: c.name)
def test_random_churn_preserves_disjointness_and_volume(allocator_class):
    allocator = allocator_class()
    rng = random.Random(42)
    live = {}
    next_id = 0
    for _ in range(800):
        if live and rng.random() < 0.45:
            name = rng.choice(list(live))
            allocator.delete(name)
            del live[name]
        else:
            next_id += 1
            size = rng.randint(1, 64)
            allocator.insert(next_id, size)
            live[next_id] = size
    allocator.space.verify_disjoint()
    assert allocator.volume == sum(live.values())
    assert allocator.num_objects == len(live)


@pytest.mark.parametrize("allocator_class", ALL_BASELINES, ids=lambda c: c.name)
def test_request_validation(allocator_class):
    allocator = allocator_class()
    allocator.insert("a", 4)
    with pytest.raises(AllocationError):
        allocator.insert("a", 4)
    with pytest.raises(AllocationError):
        allocator.delete("missing")


def test_non_moving_allocators_never_move():
    for allocator_class in (FirstFitAllocator, BestFitAllocator, NextFitAllocator,
                            WorstFitAllocator, BuddyAllocator, AppendOnlyAllocator):
        allocator = allocator_class()
        trace = churn_trace(500, seed=9, target_live=60)
        allocator.run(trace)
        assert allocator.stats.total_moves == 0
        assert not allocator.supports_reallocation


def test_first_fit_reuses_the_lowest_gap():
    allocator = FirstFitAllocator()
    allocator.insert("a", 10)
    allocator.insert("b", 10)
    allocator.insert("c", 10)
    allocator.delete("a")
    allocator.delete("c")  # trailing gap shrinks the high-water mark
    allocator.insert("d", 6)
    assert allocator.address_of("d") == 0
    assert allocator.footprint == 20


def test_best_fit_prefers_the_tightest_gap():
    allocator = BestFitAllocator()
    for name, size in [("a", 10), ("b", 4), ("c", 10), ("d", 6), ("e", 10)]:
        allocator.insert(name, size)
    allocator.delete("b")  # gap of 4
    allocator.delete("d")  # gap of 6
    allocator.insert("f", 5)
    assert allocator.address_of("f") == 24  # the size-6 gap, not the size-4 one


def test_worst_fit_prefers_the_largest_gap():
    allocator = WorstFitAllocator()
    for name, size in [("a", 10), ("b", 4), ("c", 10), ("d", 8), ("e", 10)]:
        allocator.insert(name, size)
    allocator.delete("b")
    allocator.delete("d")
    allocator.insert("f", 2)
    assert allocator.address_of("f") == 24  # inside the size-8 gap


def test_free_list_coalescing_collapses_adjacent_gaps():
    allocator = FirstFitAllocator()
    for index in range(5):
        allocator.insert(index, 8)
    for index in [1, 3, 2]:
        allocator.delete(index)
    # Holes 1, 2, 3 coalesce into one 24-unit gap starting at 8.
    assert allocator.free_volume() == 24
    allocator.insert("wide", 24)
    assert allocator.address_of("wide") == 8


def test_append_only_never_reuses_space():
    allocator = AppendOnlyAllocator()
    allocator.insert("a", 10)
    allocator.delete("a")
    allocator.insert("b", 10)
    assert allocator.address_of("b") == 10
    assert allocator.footprint == 20


def test_buddy_allocator_rounds_to_powers_of_two_and_merges():
    allocator = BuddyAllocator(max_order=6)
    allocator.insert("a", 5)   # rounded to 8
    allocator.insert("b", 8)
    assert allocator.reserved_volume() == 16
    allocator.delete("a")
    allocator.delete("b")
    allocator.insert("c", 60)  # rounded to 64: the merged top block fits it
    assert allocator.address_of("c") == 0


def test_buddy_handles_objects_larger_than_the_top_order():
    allocator = BuddyAllocator(max_order=4)
    allocator.insert("huge", 100)  # larger than 2**4
    allocator.insert("small", 3)
    allocator.space.verify_disjoint()
    allocator.delete("huge")
    allocator.insert("huge2", 100)
    allocator.space.verify_disjoint()


def test_logging_compaction_triggers_at_threshold():
    allocator = LoggingCompactingReallocator(threshold=2.0, trace=True)
    allocator.insert("small-keep", 2)
    allocator.insert("big", 40)
    allocator.insert("tail", 2)
    assert allocator.stats.total_moves == 0
    allocator.delete("big")  # footprint 44 > 2 * volume 4 -> compaction
    assert allocator.footprint == allocator.volume == 4
    assert allocator.stats.total_moves >= 1
    with pytest.raises(ValueError):
        LoggingCompactingReallocator(threshold=1.0)


def test_logging_compaction_keeps_two_x_footprint_under_churn():
    allocator = LoggingCompactingReallocator()
    allocator.run(churn_trace(1500, seed=13, target_live=100))
    assert allocator.stats.max_footprint_ratio <= 2.0 + 1e-9


def test_size_class_gap_moves_constant_objects_per_request():
    allocator = SizeClassGapReallocator(trace=True)
    rng = random.Random(3)
    live = []
    next_id = 0
    worst = 0
    for _ in range(800):
        if live and rng.random() < 0.4:
            allocator.delete(live.pop(rng.randrange(len(live))))
        else:
            next_id += 1
            allocator.insert(next_id, rng.randint(1, 128))
            live.append(next_id)
        worst = max(worst, allocator.history[-1].move_count)
    # At most one displacement per larger size class (about log2(128) = 7),
    # plus the backfill move on deletes.
    assert worst <= 10
    allocator.space.verify_disjoint()


def test_ideal_packing_keeps_footprint_equal_to_volume():
    allocator = IdealPackingReallocator()
    rng = random.Random(5)
    live = []
    next_id = 0
    for _ in range(400):
        if live and rng.random() < 0.5:
            allocator.delete(live.pop(rng.randrange(len(live))))
        else:
            next_id += 1
            allocator.insert(next_id, rng.randint(1, 32))
            live.append(next_id)
        assert allocator.footprint == allocator.volume


def test_fragmentation_attack_hurts_non_movers_only():
    trace = fragmentation_attack_trace(pairs=50, small_size=2, large_size=32)
    fragmented = FirstFitAllocator()
    fragmented.run(trace)
    compact = LoggingCompactingReallocator()
    compact.run(trace)
    assert fragmented.stats.max_footprint_ratio > 5
    assert compact.stats.max_footprint_ratio <= 2.0 + 1e-9
