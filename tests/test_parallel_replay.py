"""Sharded parallel replay: exact merges, shard planning, and fallbacks.

The exact-merge battery is the heart: for ``merge_exact`` observers
(trace analytics, per-class occupancy) a sharded replay must be
*byte-identical* to a serial one — same ``export()``, same rendered
result — across block sizes, shard counts, and shard-boundary
placements.  The in-process battery drives the merge machinery directly
(ShardContext + ``iter_range`` + ``merge``) so hypothesis can afford many
examples; a handful of end-to-end tests then cross the real process pool
(``analyze_trace_parallel``, ``run_trace(jobs=N)``, campaign cells).
"""

import warnings

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.allocators import FirstFitAllocator
from repro.campaign import CampaignSpec, SpecError, run_campaign
from repro.engine import (
    FootprintSeriesObserver,
    MetricsObserver,
    PerClassOccupancyObserver,
    SerialFallbackWarning,
    ShardContext,
    SimulationEngine,
    TraceAnalyticsObserver,
    analyze_trace_parallel,
    planned_stride,
    replay_unshardable_reason,
    run_replay_sharded,
    shard_plan,
    unmergeable_observers,
)
from repro.metrics import run_trace
from repro.workloads import (
    TraceFileSource,
    UniformSizes,
    churn_trace,
    read_block_index,
    save_trace,
)


@pytest.fixture(scope="module")
def v3_trace(tmp_path_factory):
    """A 2000-request churn trace saved as v3 with 128-record blocks."""
    base = tmp_path_factory.mktemp("par")
    trace = churn_trace(2000, UniformSizes(1, 64), target_live=60, seed=21)
    path = base / "churn.v3"
    save_trace(trace, path, version=3, block_records=128)
    return {"trace": trace, "path": path}


def make_v3(tmp_path, requests, block_records, seed=3):
    trace = churn_trace(requests, UniformSizes(1, 32), target_live=40, seed=seed)
    path = tmp_path / f"t{requests}b{block_records}.v3"
    save_trace(trace, path, version=3, block_records=block_records)
    return trace, path


# ------------------------------------------------------------- planned_stride
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(total=st.integers(0, 5000), max_points=st.integers(1, 64))
def test_planned_stride_matches_the_live_adaptive_sampler(total, max_points):
    """``planned_stride`` must predict exactly the stride the serial
    adaptive sampler ends on (sample-at-stride, double when over budget)."""
    stride = 1
    kept = 0
    for index in range(total):
        if index % stride == 0:
            kept += 1
        if kept > max_points:
            stride *= 2
            kept = sum(1 for i in range(0, index + 1, stride))
    assert planned_stride(total, max_points) == stride
    assert planned_stride(total, max_points, every=7) == 7


# ----------------------------------------------------------------- shard_plan
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    records=st.lists(st.integers(1, 50), min_size=1, max_size=40),
    jobs=st.integers(1, 12),
)
def test_shard_plan_partitions_the_block_list(records, jobs):
    """Contiguous, covering, non-empty, at most ``jobs`` shards."""

    class FakeBlock:
        def __init__(self, n):
            self.records = n

    class FakeIndex:
        def __init__(self, counts):
            self.blocks = [FakeBlock(n) for n in counts]

    plan = shard_plan(FakeIndex(records), jobs)
    assert 1 <= len(plan) <= min(jobs, len(records))
    assert plan[0][0] == 0
    assert plan[-1][1] == len(records)
    for (_, stop), (start, _) in zip(plan, plan[1:]):
        assert stop == start
    assert all(stop > start for start, stop in plan)


# -------------------------------------------------- in-process exact merging
def serial_analytics(trace, **kwargs):
    observer = TraceAnalyticsObserver(**kwargs)
    for request in trace:
        observer.observe(request)
    return observer


def sharded_analytics_in_process(path, shards, **kwargs):
    """Drive the shard/merge machinery without a process pool."""
    index = read_block_index(path)
    plan = shard_plan(index, shards)
    parts = []
    for shard, (start, stop) in enumerate(plan):
        observer = TraceAnalyticsObserver(**kwargs)
        first = index.blocks[start]
        observer.begin_shard(
            ShardContext(
                shard=shard,
                shards=len(plan),
                start_index=first.start,
                records=sum(b.records for b in index.blocks[start:stop]),
                total_records=index.total_records,
                entry_live=index.entry_snapshot(start) if start else [],
            )
        )
        for request in index.iter_range(start, stop):
            observer.observe(request)
        parts.append(observer)
    merged = parts[0]
    for other in parts[1:]:
        merged.merge(other)
    return merged


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 500),
    requests=st.integers(2, 400),
    block_records=st.sampled_from([1, 3, 7, 16, 64]),
    shards=st.integers(2, 6),
)
def test_analytics_merge_is_byte_identical_to_serial(
    tmp_path_factory, seed, requests, block_records, shards
):
    trace = churn_trace(requests, UniformSizes(1, 32), target_live=25, seed=seed)
    path = tmp_path_factory.mktemp("merge") / "t.v3"
    save_trace(trace, path, version=3, block_records=block_records)
    serial = serial_analytics(trace, max_points=32)
    merged = sharded_analytics_in_process(path, shards, max_points=32)
    assert merged.export() == serial.export()
    assert merged.result().to_dict() == serial.result().to_dict()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 200),
    requests=st.integers(2, 300),
    shards=st.integers(2, 4),
)
def test_per_class_occupancy_merge_is_byte_identical(
    tmp_path_factory, seed, requests, shards
):
    trace = churn_trace(requests, UniformSizes(1, 64), target_live=30, seed=seed)
    path = tmp_path_factory.mktemp("occ") / "t.v3"
    save_trace(trace, path, version=3, block_records=16)

    serial = PerClassOccupancyObserver(max_points=16)
    SimulationEngine(FirstFitAllocator(), [serial]).run(trace)

    index = read_block_index(path)
    plan = shard_plan(index, shards)
    parts = []
    for shard, (start, stop) in enumerate(plan):
        observer = PerClassOccupancyObserver(max_points=16)
        first = index.blocks[start]
        context = ShardContext(
            shard=shard,
            shards=len(plan),
            start_index=first.start,
            records=sum(b.records for b in index.blocks[start:stop]),
            total_records=index.total_records,
            entry_live=index.entry_snapshot(start) if start else [],
        )
        allocator = FirstFitAllocator()
        if context.entry_live:
            from repro.workloads import Request

            allocator.run(
                Request.insert(name, size) for name, size in context.entry_live
            )
        observer.begin_shard(context)
        SimulationEngine(allocator, [observer]).run(index.iter_range(start, stop))
        parts.append(observer)
    merged = parts[0]
    for other in parts[1:]:
        merged.merge(other)
    assert merged.export() == serial.export()


# --------------------------------------------------------- process-pool paths
def test_analyze_trace_parallel_is_byte_identical(v3_trace):
    serial = serial_analytics(v3_trace["trace"])
    for jobs in (2, 3):
        merged = analyze_trace_parallel(v3_trace["path"], jobs=jobs)
        assert merged is not None
        assert merged.export() == serial.export()
        assert merged.result().to_dict() == serial.result().to_dict()


def test_analyze_trace_parallel_declines_unshardable_inputs(tmp_path, v3_trace):
    assert analyze_trace_parallel(v3_trace["path"], jobs=1) is None
    trace, single = make_v3(tmp_path, 50, 128)  # one block
    assert analyze_trace_parallel(single, jobs=4) is None
    v2 = tmp_path / "t.v2"
    save_trace(trace, v2, version=2)
    assert analyze_trace_parallel(v2, jobs=4) is None


def test_run_trace_sharded_matches_serial_stream_metrics(v3_trace):
    """Stream-derived metrics (request counts, volumes) are exact under
    sharding; per-shard allocator maxima may differ and are not compared."""
    serial = run_trace(FirstFitAllocator(), TraceFileSource(v3_trace["path"]))
    sharded = run_trace(
        FirstFitAllocator(), TraceFileSource(v3_trace["path"]), jobs=3
    )
    assert sharded.requests == serial.requests
    assert sharded.final_volume == serial.final_volume
    assert sharded.final_footprint >= sharded.final_volume


def test_run_trace_sharded_folds_allocator_stats(v3_trace):
    serial_allocator = FirstFitAllocator()
    run_trace(serial_allocator, TraceFileSource(v3_trace["path"]))
    sharded_allocator = FirstFitAllocator()
    result = run_trace(sharded_allocator, TraceFileSource(v3_trace["path"]), jobs=2)
    assert result.requests == 2000
    assert sharded_allocator.stats.requests >= 2000  # + snapshot-free seeding? no: exact
    assert sharded_allocator.stats.inserts == serial_allocator.stats.inserts
    assert sharded_allocator.stats.deletes == serial_allocator.stats.deletes


def test_run_trace_unmergeable_observer_warns_and_falls_back(v3_trace):
    with pytest.warns(SerialFallbackWarning, match="FootprintSeriesObserver"):
        metrics = run_trace(
            FirstFitAllocator(),
            TraceFileSource(v3_trace["path"]),
            observers=[FootprintSeriesObserver(max_points=8)],
            jobs=2,
        )
    assert metrics.requests == 2000


def test_run_trace_materialised_trace_warns_and_falls_back(v3_trace):
    with pytest.warns(SerialFallbackWarning, match="on-disk"):
        metrics = run_trace(FirstFitAllocator(), v3_trace["trace"], jobs=2)
    assert metrics.requests == 2000


def test_run_trace_v2_file_warns_with_convert_hint(tmp_path, v3_trace):
    v2 = tmp_path / "t.v2"
    save_trace(v3_trace["trace"], v2, version=2)
    with pytest.warns(SerialFallbackWarning, match="--format v3"):
        metrics = run_trace(FirstFitAllocator(), TraceFileSource(v2), jobs=2)
    assert metrics.requests == 2000


# ------------------------------------------------------------------ fallbacks
def test_replay_unshardable_reason_cases(tmp_path, v3_trace):
    source = TraceFileSource(v3_trace["path"])
    mergeable = [MetricsObserver()]
    assert replay_unshardable_reason(source, mergeable) is None

    reason = replay_unshardable_reason(source, [FootprintSeriesObserver()])
    assert "FootprintSeriesObserver" in reason

    reason = replay_unshardable_reason(v3_trace["trace"], mergeable)
    assert "on-disk" in reason

    _, single = make_v3(tmp_path, 40, 128)
    reason = replay_unshardable_reason(TraceFileSource(single), mergeable)
    assert "single block" in reason


def test_unmergeable_observers_lists_the_blockers():
    names = unmergeable_observers(
        [MetricsObserver(), FootprintSeriesObserver(), TraceAnalyticsObserver()]
    )
    assert names == ["FootprintSeriesObserver"]


def test_run_replay_sharded_returns_none_on_unpicklable_payload(v3_trace):
    class Unpicklable(MetricsObserver):
        mergeable = True

        def __init__(self):
            super().__init__()
            self._handle = open(v3_trace["path"], "rb")  # cannot pickle

    observer = Unpicklable()
    try:
        result = run_replay_sharded(
            FirstFitAllocator(), TraceFileSource(v3_trace["path"]), [observer], jobs=2
        )
        assert result is None
    finally:
        observer._handle.close()


# ------------------------------------------------------------------- campaign
def replay_spec(path, jobs, stream=True):
    workload = {"kind": "replay", "path": str(path), "stream": stream}
    if jobs != 1:
        workload["jobs"] = jobs
    return CampaignSpec.from_dict(
        {
            "name": "par",
            "seed": 3,
            "workloads": [workload],
            "allocators": ["first_fit"],
            "costs": ["linear"],
            "devices": ["ram"],
        }
    )


def test_campaign_cell_replays_sharded(v3_trace):
    serial = run_campaign(replay_spec(v3_trace["path"], jobs=1))
    with warnings.catch_warnings():
        # The device observer is mergeable, so a plain cell must actually
        # shard — any serial fallback is a regression, not a warning.
        warnings.simplefilter("error", SerialFallbackWarning)
        sharded = run_campaign(replay_spec(v3_trace["path"], jobs=2))
    (serial_record,) = serial.records
    (sharded_record,) = sharded.records
    assert sharded_record["status"] == "ok"
    assert sharded_record["requests"] == serial_record["requests"] == 2000
    assert sharded_record["final_volume"] == serial_record["final_volume"]
    # Device writes are stream-derived (one per insert), hence exact.
    assert (
        sharded_record["device_units_written"]
        == serial_record["device_units_written"]
    )


def test_campaign_replay_jobs_requires_stream(v3_trace):
    from repro.campaign import build_workload

    (cell,) = replay_spec(v3_trace["path"], jobs=2, stream=False).expand()
    with pytest.raises(SpecError, match="'stream': true"):
        build_workload(cell.workload, seed=cell.seed)


def test_campaign_pool_workers_fall_back_without_deadlock(v3_trace):
    """Campaign jobs=2 x replay jobs=2 would nest process pools; the replay
    layer detects the daemonic worker and silently replays serially."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SerialFallbackWarning)
        result = run_campaign(replay_spec(v3_trace["path"], jobs=2), jobs=2)
    (record,) = result.records
    assert record["status"] == "ok"
    assert record["requests"] == 2000
