"""Tests for background trace compression, ``sync()``, and tail recovery.

Satellite of ISSUE 10: ``compress="background"`` moves zlib work onto a
writer-owned worker thread with *byte-identical* output (pinned here for
both binary formats), ``BinaryTraceWriter.sync()`` makes the
written-so-far prefix durable as complete self-delimiting v3 blocks, and
:func:`read_trace_tail` recovers exactly that prefix from a trailer-less
(crashed) file — the durability contract of the live allocation service.
"""

import random

import pytest

from repro.allocators import FirstFitAllocator
from repro.engine import SimulationEngine, TraceRecorderObserver
from repro.workloads import (
    Request,
    Trace,
    UniformSizes,
    churn_trace,
    load_trace,
    open_trace_writer,
    read_trace_tail,
    save_trace,
    trace_info,
)


def churny(seed, requests):
    rng = random.Random(seed)
    live = set()
    out = []
    for i in range(requests):
        if live and rng.random() < 0.45:
            name = rng.choice(sorted(live))
            live.discard(name)
            out.append(Request.delete(name))
        else:
            name = f"o{i}"
            live.add(name)
            out.append(Request.insert(name, rng.randint(1, 4096)))
    return Trace(out, label="bg", metadata={"seed": seed})


# -------------------------------------------------------------- byte identity
@pytest.mark.parametrize("version", [2, 3])
def test_background_compression_is_byte_identical_to_inline(tmp_path, version):
    trace = churny(7, 3000)
    inline, background = tmp_path / "inline.bin", tmp_path / "background.bin"
    save_trace(trace, inline, version=version, compress=True)
    save_trace(trace, background, version=version, compress="background")
    assert inline.read_bytes() == background.read_bytes()
    loaded = load_trace(background)
    assert list(loaded) == list(trace)
    assert loaded.metadata == trace.metadata


@pytest.mark.parametrize("version", [2, 3])
def test_background_writer_streams_and_closes_cleanly(tmp_path, version):
    trace = churny(3, 500)
    path = tmp_path / "stream.bin"
    writer = open_trace_writer(
        path, version=version, label="bg", compress="background", block_records=64
    )
    for request in trace:
        writer.write(request)
    writer.close()
    assert writer.count == 500
    assert [(r.op, r.name, r.size) for r in load_trace(path)] == [
        (r.op, r.name, r.size) for r in trace
    ]


def test_background_mode_rejects_unsupported_targets(tmp_path):
    with pytest.raises(ValueError, match="binary formats"):
        open_trace_writer(tmp_path / "t.v1", version=1, compress="background")
    with pytest.raises(ValueError):
        open_trace_writer(tmp_path / "t.v2", version=2, compress="sideways")


def test_background_abort_discards_without_raising(tmp_path):
    writer = open_trace_writer(
        tmp_path / "aborted.v3", version=3, compress="background", block_records=32
    )
    for i in range(100):
        writer.write(Request.insert(f"o{i}", 8))
    writer.abort()  # must join the worker and close the handle quietly
    with pytest.raises(ValueError):
        load_trace(tmp_path / "aborted.v3")  # truncation stays detectable


def test_trace_recorder_observer_supports_background_compression(tmp_path):
    trace = churn_trace(400, UniformSizes(1, 32), target_live=40, seed=2)
    inline_path, background_path = tmp_path / "in.v3", tmp_path / "bg.v3"
    SimulationEngine(
        FirstFitAllocator(),
        [TraceRecorderObserver(inline_path, version=3, compress=True)],
    ).run(trace)
    SimulationEngine(
        FirstFitAllocator(),
        [TraceRecorderObserver(background_path, version=3, compress="background")],
    ).run(trace)
    assert inline_path.read_bytes() == background_path.read_bytes()
    assert trace_info(background_path).requests == 400


# --------------------------------------------------------- sync + tail reads
@pytest.mark.parametrize("compress", [False, True, "background"])
def test_sync_makes_the_prefix_recoverable_from_a_crashed_file(
    tmp_path, compress
):
    """Write 3 synced rounds of 100 plus 50 unsynced requests, then "crash"
    (abort: no trailer).  The tail read must salvage exactly the synced
    300 — and never invent the unsynced suffix."""
    trace = list(churny(11, 350))
    path = tmp_path / "crashed.v3"
    writer = open_trace_writer(
        path, version=3, compress=compress, block_records=1000
    )
    for index, request in enumerate(trace):
        writer.write(request)
        if index in (99, 199, 299):
            writer.sync()
    writer.abort()

    with pytest.raises(ValueError):
        load_trace(path)  # the full reader still refuses the torn file
    tail = read_trace_tail(path)
    assert not tail.complete
    assert tail.blocks == 3
    assert [(r.op, str(r.name), r.size) for r in tail.requests] == [
        (r.op, str(r.name), r.size) for r in trace[:300]
    ]


def test_tail_read_of_a_complete_file_reports_complete(tmp_path):
    trace = churny(5, 250)
    path = tmp_path / "whole.v3"
    save_trace(trace, path, version=3)
    tail = read_trace_tail(path)
    assert tail.complete
    assert len(tail.requests) == 250
    assert tail.header.label == "bg"


def test_tail_read_requires_v3(tmp_path):
    path = tmp_path / "v2.bin"
    save_trace(churny(1, 50), path, version=2)
    with pytest.raises(ValueError, match="v3"):
        read_trace_tail(path)


def test_sync_flushes_partial_blocks_that_stay_readable_after_close(tmp_path):
    """sync() mid-block emits a short block; the footer records per-block
    counts, so variable-size blocks round-trip through a normal close."""
    trace = list(churny(9, 130))
    path = tmp_path / "short-blocks.v3"
    writer = open_trace_writer(path, version=3, block_records=1000)
    for index, request in enumerate(trace):
        writer.write(request)
        if index == 24:
            writer.sync()  # 25-record partial block
    writer.close()
    info = trace_info(path)
    assert info.requests == 130
    assert info.blocks == 2
    assert [(r.op, str(r.name)) for r in load_trace(path)] == [
        (r.op, str(r.name)) for r in trace
    ]
