"""Tests for the observer-based simulation engine.

Covers the observer protocol (which hooks fire, attach/detach), the
zero-observer fast path (no ``RequestRecord`` construction at all), the
fixed-seed equivalence of the observer-derived ``ExecutionMetrics`` with the
pre-refactor collector, the bounded footprint-series downsampling, and the
insert-rollback regression fix.
"""

import pytest

import repro.core.base as core_base
from repro.core import (
    Allocator,
    CheckpointedReallocator,
    CostObliviousReallocator,
)
from repro.core.base import AllocationError
from repro.costs import ConstantCost, LinearCost
from repro.engine import (
    DeviceObserver,
    FootprintSeriesObserver,
    HistoryObserver,
    Observer,
    SimulationEngine,
    build_observer,
    needs_events,
    replay,
)
from repro.metrics import run_trace
from repro.storage.devices import MainMemoryDevice
from repro.workloads import UniformSizes, churn_trace


class RecordingObserver(Observer):
    """Counts every event it sees."""

    def __init__(self):
        self.attached = None
        self.finished = None
        self.requests = []
        self.moves = 0
        self.flushes = 0
        self.checkpoints = 0

    def on_attach(self, allocator):
        self.attached = allocator

    def on_request(self, record):
        self.requests.append(record)

    def on_move(self, move):
        self.moves += 1

    def on_flush(self, flush):
        self.flushes += 1

    def on_checkpoint(self, count):
        self.checkpoints += count

    def on_finish(self, allocator):
        self.finished = allocator


# ----------------------------------------------------------------- protocol
def test_observer_sees_every_event_kind():
    trace = churn_trace(600, UniformSizes(1, 32), target_live=60, seed=3)
    allocator = CheckpointedReallocator(epsilon=0.25)
    observer = RecordingObserver()
    run = SimulationEngine(allocator, [observer]).run(trace)
    assert observer.attached is allocator
    assert observer.finished is allocator
    assert len(observer.requests) == len(trace) == run.requests
    assert observer.moves >= allocator.stats.total_moves > 0
    assert observer.flushes == allocator.stats.flushes > 0
    assert observer.checkpoints == allocator.stats.checkpoints > 0
    assert run.requests_per_second > 0


def test_engine_detaches_observers_after_the_run():
    trace = churn_trace(100, seed=4, target_live=20)
    allocator = CostObliviousReallocator(epsilon=0.5)
    observer = RecordingObserver()
    SimulationEngine(allocator, [observer]).run(trace)
    seen = len(observer.requests)
    allocator.insert("late", 3)
    assert len(observer.requests) == seen  # detached: no more notifications


def test_attach_detach_observer_directly():
    allocator = CostObliviousReallocator(epsilon=0.5)
    observer = RecordingObserver()
    allocator.attach_observer(observer)
    allocator.insert("a", 4)
    allocator.detach_observer(observer)
    allocator.detach_observer(observer)  # second detach is a no-op
    allocator.insert("b", 4)
    assert [r.name for r in observer.requests] == ["a"]


def test_needs_events_distinguishes_passive_observers():
    class Passive(Observer):
        def on_finish(self, allocator):
            pass

    assert not needs_events(Passive())
    assert needs_events(RecordingObserver())
    assert needs_events(HistoryObserver())


# ---------------------------------------------------------------- fast path
def test_zero_observer_run_skips_record_construction(monkeypatch):
    built = []
    real = core_base.RequestRecord

    def counting(*args, **kwargs):
        record = real(*args, **kwargs)
        built.append(record)
        return record

    monkeypatch.setattr(core_base, "RequestRecord", counting)
    trace = churn_trace(200, seed=5, target_live=30)

    bare = CostObliviousReallocator(epsilon=0.5)
    bare.run(trace)
    assert built == []  # the whole replay built no records at all

    observed = CostObliviousReallocator(epsilon=0.5)
    observed.attach_observer(RecordingObserver())
    observed.run(trace)
    assert len(built) == len(trace)


def test_fast_path_keeps_stats_identical():
    trace = churn_trace(800, seed=6, target_live=80)
    bare = CostObliviousReallocator(epsilon=0.25)
    bare.run(trace)
    observed = CostObliviousReallocator(epsilon=0.25)
    observed.attach_observer(HistoryObserver())
    observed.run(trace)
    for field in (
        "requests",
        "inserts",
        "deletes",
        "flushes",
        "total_moves",
        "total_moved_volume",
        "max_footprint",
        "max_footprint_ratio",
        "max_request_moved_volume",
        "footprint_ratio_sum",
        "footprint_ratio_samples",
        "allocated_sizes",
        "moved_sizes",
    ):
        assert getattr(bare.stats, field) == getattr(observed.stats, field), field


def test_direct_insert_delete_still_return_full_records():
    allocator = CostObliviousReallocator(epsilon=0.5)
    record = allocator.insert("a", 7)
    assert record is not None and record.op == "insert" and record.size == 7
    assert record.footprint_after == allocator.footprint
    record = allocator.delete("a")
    assert record.op == "delete"


# -------------------------------------------------------------- equivalence
def _legacy_run_trace(allocator, trace, cost_functions=(), sample_every=0):
    """The pre-refactor collector, replicated verbatim from the seed
    (per-request record loop) as the equivalence oracle."""
    ratio_sum = 0.0
    ratio_count = 0
    footprint_series = []
    volume_series = []
    for index, request in enumerate(trace):
        if request.is_insert:
            record = allocator.insert(request.name, request.size)
        else:
            record = allocator.delete(request.name)
        if record.volume_after > 0:
            ratio_sum += record.footprint_after / record.volume_after
            ratio_count += 1
        if sample_every and index % sample_every == 0:
            footprint_series.append(record.footprint_after)
            volume_series.append(record.volume_after)
    if hasattr(allocator, "finish_pending_work"):
        allocator.finish_pending_work()
    stats = allocator.stats
    return {
        "final_volume": allocator.volume,
        "final_footprint": allocator.footprint,
        "max_footprint": stats.max_footprint,
        "max_footprint_ratio": stats.max_footprint_ratio,
        "mean_footprint_ratio": ratio_sum / ratio_count if ratio_count else 0.0,
        "total_moves": stats.total_moves,
        "total_moved_volume": stats.total_moved_volume,
        "moves_per_insert": stats.amortized_moves_per_insert,
        "max_request_moved_volume": stats.max_request_moved_volume,
        "max_request_checkpoints": stats.max_request_checkpoints,
        "total_checkpoints": stats.checkpoints,
        "flushes": stats.flushes,
        "cost_ratios": {f.name: stats.cost_ratio(f) for f in cost_functions},
        "footprint_series": footprint_series,
        "volume_series": volume_series,
    }


@pytest.mark.parametrize("cls", [CostObliviousReallocator, CheckpointedReallocator])
def test_observer_metrics_match_the_legacy_collector(cls):
    costs = (LinearCost(), ConstantCost())
    trace = churn_trace(1200, UniformSizes(1, 64), target_live=90, seed=77)

    legacy = _legacy_run_trace(cls(epsilon=0.25), trace, costs, sample_every=37)
    metrics = run_trace(cls(epsilon=0.25), trace, cost_functions=costs, sample_every=37)

    for key, expected in legacy.items():
        actual = getattr(metrics, key)
        if isinstance(expected, float):
            assert actual == pytest.approx(expected), key
        elif key == "cost_ratios":
            assert set(actual) == set(expected)
            for name in expected:
                assert actual[name] == pytest.approx(expected[name]), name
        else:
            assert actual == expected, key


# --------------------------------------------------------- series observer
def test_series_observer_every_mode_matches_legacy_sampling():
    trace = churn_trace(500, seed=9, target_live=50)
    legacy = _legacy_run_trace(CostObliviousReallocator(epsilon=0.5), trace, sample_every=13)
    observer = FootprintSeriesObserver(every=13)
    replay(CostObliviousReallocator(epsilon=0.5), trace, [observer])
    assert observer.footprint == legacy["footprint_series"]
    assert observer.volume == legacy["volume_series"]
    assert observer.indices == list(range(0, len(trace), 13))


def test_series_observer_adaptive_mode_stays_bounded():
    observer = FootprintSeriesObserver(max_points=64)
    allocator = CostObliviousReallocator(epsilon=0.5, audit=False)
    replay(allocator, churn_trace(5000, seed=10, target_live=60), [observer])
    assert 2 <= len(observer.footprint) <= 64
    assert observer.indices == sorted(observer.indices)
    assert observer.indices[0] == 0
    # The stride doubled at least once and the samples stay aligned to it.
    assert observer._stride > 1
    assert all(index % observer._stride == 0 for index in observer.indices)
    export = observer.export()
    assert export["requests_seen"] == 5000
    assert export["footprint"] == observer.footprint


def test_series_observer_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FootprintSeriesObserver(every=-1)
    with pytest.raises(ValueError):
        FootprintSeriesObserver(max_points=1)


def test_build_observer_registry():
    observer = build_observer({"kind": "footprint_series", "max_points": 16})
    assert isinstance(observer, FootprintSeriesObserver)
    assert observer.max_points == 16
    assert isinstance(build_observer("footprint_series"), FootprintSeriesObserver)
    with pytest.raises(ValueError, match="unknown observer"):
        build_observer("no_such_observer")
    with pytest.raises(ValueError, match="bad parameters"):
        build_observer({"kind": "footprint_series", "max_points": 16, "bogus": 1})


# ------------------------------------------------------------------- device
def test_device_observer_matches_inline_accounting():
    trace = churn_trace(400, seed=11, target_live=40)
    device = MainMemoryDevice()
    allocator = CostObliviousReallocator(epsilon=0.25)
    replay(allocator, trace, [DeviceObserver(device)])
    assert device.stats.units_written == (
        trace.total_inserted_volume + allocator.stats.total_moved_volume
    )
    assert device.stats.moves == allocator.stats.total_moves
    assert device.stats.elapsed_ms > 0


# --------------------------------------------------- insert rollback bugfix
class FlakyAllocator(Allocator):
    """Placement fails on demand, to exercise the rollback path."""

    name = "flaky"

    def __init__(self):
        super().__init__()
        self.fail_next = False
        self._bump = 0

    def _do_insert(self, name, size):
        if self.fail_next:
            self.fail_next = False
            raise RuntimeError("injected placement failure")
        self._place_object(name, size, self._bump, reason="insert")
        self._bump += size

    def _do_delete(self, name, size):
        self._free_object(name)


def test_failed_insert_rolls_back_registration_and_can_be_retried():
    allocator = FlakyAllocator()
    allocator.insert("a", 8)
    allocator.fail_next = True
    with pytest.raises(RuntimeError, match="injected"):
        allocator.insert("b", 16)
    # The failed insert left no trace: not allocated, no stats, delta intact.
    assert "b" not in allocator
    assert allocator.delta == 8
    assert allocator.stats.inserts == 1
    assert allocator.stats.requests == 1
    assert allocator.stats.total_allocated_volume == 8
    # The retry that used to die with "already allocated" now succeeds.
    record = allocator.insert("b", 16)
    assert record.op == "insert"
    assert allocator.size_of("b") == 16
    assert allocator.delta == 16
    assert allocator.stats.inserts == 2


def test_failed_insert_still_raises_validation_errors_first():
    allocator = FlakyAllocator()
    with pytest.raises(AllocationError):
        allocator.insert("x", 0)
    allocator.insert("x", 2)
    with pytest.raises(AllocationError):
        allocator.insert("x", 2)
    assert allocator.stats.requests == 1


def test_device_observer_consistent_for_deamortized_pending_work():
    from repro.core import DeamortizedReallocator

    trace = churn_trace(400, seed=12, target_live=40)
    device = MainMemoryDevice()
    allocator = DeamortizedReallocator(epsilon=0.25)
    replay(allocator, trace, [DeviceObserver(device)])
    # The device sees exactly the moves the stats count, including the
    # drain of any flush still pending at trace end.
    assert device.stats.moves == allocator.stats.total_moves
    assert device.stats.units_written == (
        trace.total_inserted_volume + allocator.stats.total_moved_volume
    )


def test_failed_insert_after_placement_rolls_back_the_placement():
    class PlaceThenFail(FlakyAllocator):
        def _do_insert(self, name, size):
            fail = self.fail_next
            self.fail_next = False  # place first, then fail (once)
            super()._do_insert(name, size)
            if fail:
                raise RuntimeError("post-placement failure")

    allocator = PlaceThenFail()
    allocator.insert("a", 4)
    allocator.fail_next = True
    with pytest.raises(RuntimeError, match="post-placement"):
        allocator.insert("poison", 8)
    assert "poison" not in allocator
    assert "poison" not in allocator.space
    assert allocator.volume == 4
    # A fresh insert of the same name succeeds instead of clashing.
    allocator._bump = 100
    record = allocator.insert("poison", 8)
    assert record.op == "insert" and allocator.size_of("poison") == 8
