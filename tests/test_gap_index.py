"""Property tests: the indexed substrate agrees with the seed linear scans.

Two oracles, both re-implementations of the pre-index code:

* ``_ScanFreeList`` — the flat address-ordered ``List[Extent]`` free list
  with the original O(n) gap-selection scans, used to check that every
  :class:`GapIndex`-backed policy picks the *same gap on every request*;
* a naive all-pairs overlap scan, used to check that the address-ordered
  index inside :class:`AddressSpace` detects exactly the same clashes.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.allocators import (
    BestFitAllocator,
    FirstFitAllocator,
    NextFitAllocator,
    WorstFitAllocator,
)
from repro.storage.address_space import AddressSpace, OverlapError
from repro.storage.extent import Extent
from repro.storage.gap_index import GapIndex


# --------------------------------------------------------------- seed oracle
class _ScanFreeList:
    """The pre-index free list: flat sorted list + linear-scan policies."""

    def __init__(self, policy):
        self.policy = policy
        self.free = []  # sorted by start address
        self.high_water = 0
        self.rover = 0

    def _choose_gap(self, size):
        free = self.free
        if self.policy == "first":
            for index, gap in enumerate(free):
                if gap.length >= size:
                    return index
            return None
        if self.policy == "best":
            best = None
            best_length = None
            for index, gap in enumerate(free):
                if gap.length >= size and (best_length is None or gap.length < best_length):
                    best = index
                    best_length = gap.length
            return best
        if self.policy == "worst":
            worst = None
            worst_length = -1
            for index, gap in enumerate(free):
                if gap.length >= size and gap.length > worst_length:
                    worst = index
                    worst_length = gap.length
            return worst
        count = len(free)  # next fit
        if count == 0:
            return None
        start = min(self.rover, count - 1)
        for offset in range(count):
            index = (start + offset) % count
            if free[index].length >= size:
                self.rover = index
                return index
        return None

    def insert(self, size):
        index = self._choose_gap(size)
        if index is None:
            address = self.high_water
            self.high_water += size
        else:
            gap = self.free[index]
            address = gap.start
            if gap.length == size:
                del self.free[index]
            else:
                self.free[index] = Extent(gap.start + size, gap.length - size)
        return address

    def release(self, extent):
        lo, hi = 0, len(self.free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.free[mid].start < extent.start:
                lo = mid + 1
            else:
                hi = mid
        start, end = extent.start, extent.end
        if lo > 0 and self.free[lo - 1].end == start:
            start = self.free[lo - 1].start
            del self.free[lo - 1]
            lo -= 1
        if lo < len(self.free) and self.free[lo].start == end:
            end = self.free[lo].end
            del self.free[lo]
        if end == self.high_water:
            self.high_water = start
        else:
            self.free.insert(lo, Extent(start, end - start))


POLICIES = {
    "first": FirstFitAllocator,
    "best": BestFitAllocator,
    "worst": WorstFitAllocator,
    "next": NextFitAllocator,
}

#: A churn script: positive = insert of that size, negative = delete the
#: live object at position (-value - 1) mod len(live).
churn_scripts = st.lists(
    st.integers(min_value=-64, max_value=48).filter(lambda v: v != 0),
    min_size=1,
    max_size=300,
)


@pytest.mark.parametrize("policy", sorted(POLICIES))
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=churn_scripts)
def test_indexed_policies_agree_with_seed_scans(policy, script):
    allocator = POLICIES[policy]()
    oracle = _ScanFreeList(policy)
    live = []
    next_id = 0
    for step, action in enumerate(script):
        if action > 0 or not live:
            size = abs(action)
            next_id += 1
            allocator.insert(next_id, size)
            expected = oracle.insert(size)
            assert allocator.address_of(next_id) == expected, (
                f"step {step}: {policy} fit chose {allocator.address_of(next_id)}, "
                f"seed scan chose {expected}"
            )
            live.append((next_id, size, expected))
        else:
            name, size, address = live.pop((-action - 1) % len(live))
            allocator.delete(name)
            oracle.release(Extent(address, size))
        assert allocator.free_extents() == oracle.free
        assert allocator.high_water == oracle.high_water
        assert allocator.free_volume() == sum(gap.length for gap in oracle.free)
    allocator.space.verify_disjoint()


# ---------------------------------------------------- overlap-audit oracle
def _naive_overlap(extents, candidate, ignore=None):
    for name, existing in extents.items():
        if name == ignore:
            continue
        if existing.overlaps(candidate):
            return name
    return None


#: An audit script: (op selector, address, length) triples.
audit_scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=1, max_value=24),
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=audit_scripts)
def test_indexed_overlap_detection_agrees_with_all_pairs_scan(script):
    space = AddressSpace(validate=True)
    mirror = {}
    next_id = 0
    for op, address, length in script:
        extent = Extent(address, length)
        if op < 5 or not mirror:  # place
            next_id += 1
            name = f"obj-{next_id}"
            if _naive_overlap(mirror, extent) is None:
                space.place(name, extent)
                mirror[name] = extent
            else:
                with pytest.raises(OverlapError):
                    space.place(name, extent)
                assert name not in space
        elif op < 8:  # move an existing object
            name = sorted(mirror)[address % len(mirror)]
            if _naive_overlap(mirror, extent, ignore=name) is None:
                space.move(name, extent)
                mirror[name] = extent
            else:
                with pytest.raises(OverlapError):
                    space.move(name, extent)
                assert space.extent_of(name) == mirror[name]
        else:  # remove
            name = sorted(mirror)[address % len(mirror)]
            assert space.remove(name) == mirror.pop(name)
        assert space.free_gaps() == _naive_gaps(mirror)
        assert space.volume() == sum(e.length for e in mirror.values())
    space.verify_disjoint()


def _naive_gaps(extents):
    gaps = []
    cursor = 0
    for extent in sorted(extents.values(), key=lambda e: e.start):
        if extent.start > cursor:
            gaps.append(Extent(cursor, extent.start - cursor))
        cursor = max(cursor, extent.end)
    return gaps


# ------------------------------------------------------- GapIndex unit tests
def test_gap_index_policy_queries():
    gaps = GapIndex()
    for start, length in [(0, 4), (10, 8), (30, 8), (50, 2)]:
        gaps.add(Extent(start, length))
    assert len(gaps) == 4
    assert gaps.total_free == 22
    assert gaps.first_fit(5) == 10
    assert gaps.first_fit(2) == 0
    assert gaps.first_fit(9) is None
    assert gaps.best_fit(2) == 50
    assert gaps.best_fit(5) == 10  # ties on length 8 break to the lower address
    assert gaps.worst_fit(1) == 10
    assert gaps.worst_fit(9) is None
    assert list(gaps) == [Extent(0, 4), Extent(10, 8), Extent(30, 8), Extent(50, 2)]


def test_gap_index_take_and_remove():
    gaps = GapIndex()
    gaps.add(Extent(10, 8))
    gaps.take(10, 3)
    assert list(gaps) == [Extent(13, 5)]
    assert gaps.total_free == 5
    gaps.take(13, 5)  # exact fit removes the gap outright
    assert len(gaps) == 0 and gaps.total_free == 0
    gaps.add(Extent(4, 2))
    with pytest.raises(ValueError):
        gaps.take(4, 3)
    # The failed take must not have touched the free list (retry contract).
    assert list(gaps) == [Extent(4, 2)] and gaps.total_free == 2
    with pytest.raises(KeyError):
        gaps.remove(99)
    with pytest.raises(KeyError):
        gaps.take(99, 1)


def test_gap_index_absorb_adjacent_merges_both_sides():
    gaps = GapIndex()
    gaps.add(Extent(0, 5))
    gaps.add(Extent(8, 2))
    merged = gaps.absorb_adjacent(Extent(5, 3))
    assert merged == Extent(0, 10)
    assert len(gaps) == 0  # both neighbours were consumed, nothing re-added
    gaps.add(merged)
    # Non-adjacent release touches nothing.
    assert gaps.absorb_adjacent(Extent(20, 4)) == Extent(20, 4)
    assert list(gaps) == [Extent(0, 10)]


def test_failed_insert_restores_the_free_list_and_high_water():
    """If placement raises mid-insert (e.g. an observer blows up), the free
    list and high-water mark must roll back with the address space so the
    request can be retried — on both the gap-reuse and the extend path."""

    class _Bomb:
        armed = False

        def on_request(self, record):
            pass

        def on_move(self, move):
            if self.armed:
                raise RuntimeError("boom")

        def on_flush(self, record):
            pass

        def on_checkpoint(self, count):
            pass

    bomb = _Bomb()
    allocator = FirstFitAllocator(trace=True)
    allocator.attach_observer(bomb)
    allocator.insert("a", 4)
    allocator.insert("b", 4)
    allocator.delete("a")  # gap [0, 4)
    for size in (3, 10):  # 3 reuses the gap, 10 extends the high-water mark
        gaps_before = allocator.free_extents()
        high_water_before = allocator.high_water
        bomb.armed = True
        with pytest.raises(RuntimeError):
            allocator.insert("c", size)
        bomb.armed = False
        assert allocator.free_extents() == gaps_before
        assert allocator.high_water == high_water_before
        assert "c" not in allocator
    allocator.insert("c", 3)  # the retry lands exactly where the scan would
    assert allocator.address_of("c") == 0
    allocator.space.verify_disjoint()


def test_gap_index_next_fit_matches_the_cyclic_scan():
    gaps = GapIndex()
    for start, length in [(0, 4), (10, 8), (30, 8), (50, 2), (60, 16)]:
        gaps.add(Extent(start, length))
    for rover in range(8):
        for size in (1, 2, 4, 5, 8, 9, 16, 17):
            expected = next(
                ((rank, start) for rank, start, length in gaps.scan(rover) if length >= size),
                None,
            )
            assert gaps.next_fit(size, rover) == expected, (rover, size)
    assert GapIndex().next_fit(1, 0) is None


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    starts=st.lists(st.integers(min_value=0, max_value=400), min_size=0, max_size=40, unique=True),
    rover=st.integers(min_value=0, max_value=60),
    size=st.integers(min_value=1, max_value=12),
)
def test_gap_index_next_fit_agrees_with_scan_on_random_gap_sets(starts, rover, size):
    gaps = GapIndex()
    for start in starts:
        # Lengths 1..10, disjoint and non-adjacent by construction.
        gaps.add(Extent(start * 12, (start % 10) + 1))
    expected = next(
        ((rank, start) for rank, start, length in gaps.scan(rover) if length >= size),
        None,
    )
    assert gaps.next_fit(size, rover) == expected


def test_gap_index_scan_wraps_in_address_order():
    gaps = GapIndex()
    for start in (0, 10, 20, 30):
        gaps.add(Extent(start, 2))
    assert [(r, s) for r, s, _ in gaps.scan(2)] == [(2, 20), (3, 30), (0, 0), (1, 10)]
    # A rover past the end clamps to the last gap, like the seed scan.
    assert [s for _, s, _ in gaps.scan(99)] == [30, 0, 10, 20]
    assert list(GapIndex().scan(0)) == []


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    script=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=60)),
        min_size=1,
        max_size=200,
    ),
    sizes=st.lists(st.integers(min_value=1, max_value=14), min_size=1, max_size=6),
)
def test_size_treap_best_and_worst_fit_agree_with_a_sorted_list(script, sizes):
    """Pin the size-ordered treap to the flat sorted-list oracle it replaced:
    after every add/remove, best_fit is the bisect ceiling of the request and
    worst_fit is the lowest-addressed entry of the maximum length."""
    from bisect import bisect_left, insort

    gaps = GapIndex()
    oracle = []  # sorted (length, start) pairs, exactly the old _by_size list
    for add, slot in script:
        start = slot * 16  # disjoint, non-adjacent by construction
        length = (slot % 12) + 1
        if add:
            if gaps.length_at(start) is not None:
                continue
            gaps.add(Extent(start, length))
            insort(oracle, (length, start))
        else:
            if gaps.length_at(start) is None:
                continue
            gaps.remove(start)
            del oracle[bisect_left(oracle, (length, start))]
        for size in sizes:
            pos = bisect_left(oracle, (size,))
            expected_best = oracle[pos][1] if pos < len(oracle) else None
            assert gaps.best_fit(size) == expected_best, (size, oracle)
            if not oracle or oracle[-1][0] < size:
                expected_worst = None
            else:
                expected_worst = oracle[bisect_left(oracle, (oracle[-1][0],))][1]
            assert gaps.worst_fit(size) == expected_worst, (size, oracle)
    assert gaps.total_free == sum(length for length, _ in oracle)
