"""Tests for deterministic fault injection, retry/backoff, and hardening.

Unit-level coverage of ``repro.faults`` (plans, the injector, the retry
policy, the injectable lease clock) plus the queue/artifact hardening that
rides on it: torn journal lines never corrupt neighbours, a worker that
cannot journal gives its cell back, leases survive clock skew within the
tolerance, and a crash between journal and dequeue costs nothing (the
merge dedups).  The end-to-end chaos schedules live in test_chaos.py.
"""

import errno
import io
import json
import multiprocessing
import os
import subprocess
import sys
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignSpec,
    claim_cell,
    enqueue_campaign,
    merge_queue,
    read_journal,
    work_queue,
)
from repro.campaign.artifacts import atomic_write
from repro.campaign.queue import (
    CellJournal,
    _LeaseHeartbeat,
    journal_dir,
    release_lease,
)
from repro.cli import main
from repro.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    RetryPolicy,
    SITES,
    activate_plan,
    deactivate_faults,
    fault_point,
    fault_write,
    get_clock,
    inject,
)
from repro.obs import MemorySink, Telemetry, obs_report, use_telemetry


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Injection is process-global: always disarm (and unskew) after a test."""
    yield
    deactivate_faults()


def plan(*rules, seed=0):
    return FaultPlan(rules=list(rules), seed=seed)


# ----------------------------------------------------------------- fault plans
def test_plan_json_round_trip(tmp_path):
    original = plan(
        FaultRule(site="queue.journal.*", action="torn", times=2, torn_bytes=7),
        FaultRule(site="artifact.write.fsync", action="raise", error="ENOSPC", after=1),
        seed=42,
    )
    path = tmp_path / "plan.json"
    original.to_json(path)
    loaded = FaultPlan.from_json(path)
    assert loaded == original
    assert loaded.to_dict() == original.to_dict()


@pytest.mark.parametrize(
    "raw, match",
    [
        ({"site": "x", "action": "explode"}, "unknown fault action"),
        ({"site": "x", "error": "ENOTANERRNO"}, "unknown errno"),
        ({"site": "x", "after": -1}, "'after' must be"),
        ({"site": "x", "times": 0}, "'times' must be"),
        ({"site": "x", "probability": 1.5}, "'probability' must be"),
        ({"site": "x", "frequency": 2}, "unknown fault rule field"),
        ({"action": "raise"}, "need a 'site'"),
    ],
)
def test_bad_rules_are_rejected(raw, match):
    with pytest.raises(FaultPlanError, match=match):
        FaultRule.from_dict(raw)


def test_bad_plan_files_are_rejected(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(FaultPlanError, match="cannot read fault plan"):
        FaultPlan.from_json(missing)
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json", encoding="utf-8")
    with pytest.raises(FaultPlanError, match="not valid JSON"):
        FaultPlan.from_json(garbage)
    with pytest.raises(FaultPlanError, match="unknown fault plan field"):
        FaultPlan.from_dict({"seed": 0, "rules": [], "mystery": True})


def test_every_documented_site_has_a_description():
    assert len(SITES) >= 14
    for site, description in SITES.items():
        layer, _, rest = site.partition(".")
        assert layer and rest, site
        assert description


# ------------------------------------------------------------------ injection
def test_disabled_faults_are_no_ops():
    fault_point("queue.lease.claim")  # must not raise
    buffer = io.BytesIO()
    fault_write("trace.write.body", buffer, b"payload")
    assert buffer.getvalue() == b"payload"


def test_raise_action_fires_exactly_times_then_disarms():
    with inject(plan(FaultRule(site="queue.lease.claim", times=2))) as injector:
        for _ in range(2):
            with pytest.raises(OSError) as caught:
                fault_point("queue.lease.claim")
            assert caught.value.errno == errno.EIO
            assert "queue.lease.claim" in str(caught.value)
        fault_point("queue.lease.claim")  # exhausted: back to a no-op
        fault_point("queue.dequeue")  # other sites never matched
        assert len(injector.fired) == 2
        assert injector.hits["queue.lease.claim"] == 3


def test_after_skips_matching_hits_and_globs_match_sites():
    armed = plan(FaultRule(site="queue.journal.*", after=2, error="ENOSPC"))
    with inject(armed) as injector:
        fault_point("queue.journal.append")
        fault_point("queue.journal.fsync")
        with pytest.raises(OSError) as caught:
            fault_point("queue.journal.append")
        assert caught.value.errno == errno.ENOSPC
        assert [f["site"] for f in injector.fired] == ["queue.journal.append"]


def test_probability_schedule_is_deterministic_per_seed():
    def schedule(seed):
        fired = []
        with inject(
            plan(FaultRule(site="s", probability=0.5, times=None), seed=seed)
        ):
            for index in range(30):
                try:
                    fault_point("s")
                except OSError:
                    fired.append(index)
        return fired

    assert schedule(7) == schedule(7)
    assert schedule(7) != schedule(8)


def test_skew_action_shifts_the_lease_clock_and_deactivate_resets_it():
    before = time.time()
    with inject(plan(FaultRule(site="queue.lease.heartbeat", action="skew", skew_seconds=300.0))):
        fault_point("queue.lease.heartbeat")
        assert get_clock().now() - before > 250
    assert abs(get_clock().now() - time.time()) < 5


def test_torn_write_leaves_a_prefix_then_raises():
    buffer = io.BytesIO()
    with inject(plan(FaultRule(site="w", action="torn"))):
        with pytest.raises(OSError):
            fault_write("w", buffer, b"0123456789")
    assert buffer.getvalue() == b"01234"  # default: half the payload
    buffer = io.BytesIO()
    with inject(plan(FaultRule(site="w", action="torn", torn_bytes=3))):
        with pytest.raises(OSError):
            fault_write("w", buffer, b"0123456789")
    assert buffer.getvalue() == b"012"


def test_injected_faults_are_telemetry_events():
    sink = MemorySink()
    telemetry = Telemetry(enabled=True, sink=sink)
    with use_telemetry(telemetry):
        with inject(plan(FaultRule(site="queue.dequeue"))):
            with pytest.raises(OSError):
                fault_point("queue.dequeue")
        telemetry.flush()
    events = [e for e in sink.events if e["ev"] == "event" and e["name"] == "fault.injected"]
    assert len(events) == 1
    assert events[0]["attrs"]["site"] == "queue.dequeue"
    assert events[0]["attrs"]["action"] == "raise"
    assert events[0]["attrs"]["pid"] == os.getpid()
    counters = {e["name"]: e["value"] for e in sink.events if e["ev"] == "counter"}
    assert counters["faults.injected"] == 1


def test_env_var_arms_fault_plan_in_fresh_processes(tmp_path):
    plan_path = tmp_path / "plan.json"
    plan(FaultRule(site="queue.dequeue")).to_json(plan_path)
    script = (
        "from repro.faults import get_injector;"
        "import sys;"
        "sys.exit(0 if get_injector() is not None else 3)"
    )
    env = dict(os.environ, REPRO_FAULTS=str(plan_path))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                    env.get("PYTHONPATH")) if p
    )
    assert subprocess.run([sys.executable, "-c", script], env=env).returncode == 0
    env["REPRO_FAULTS"] = str(tmp_path / "missing.json")
    result = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True
    )
    assert result.returncode == 3  # activation failed, import survived
    assert "cannot activate REPRO_FAULTS" in result.stderr


# --------------------------------------------------------------- retry policy
def test_retry_policy_survives_transient_errors_and_counts_them():
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError(errno.EIO, "transient")
        return "done"

    sink = MemorySink()
    telemetry = Telemetry(enabled=True, sink=sink)
    naps = []
    with use_telemetry(telemetry):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, seed=1)
        assert policy.call(flaky, sleep=naps.append) == "done"
        telemetry.flush()
    assert len(attempts) == 3 and len(naps) == 2
    counters = {e["name"]: e["value"] for e in sink.events if e["ev"] == "counter"}
    assert counters["faults.retries"] == 2
    assert counters["faults.backoff_seconds"] == pytest.approx(sum(naps))


def test_retry_policy_exhaustion_raises_the_real_error():
    def always():
        raise OSError(errno.ENOSPC, "disk full")

    with pytest.raises(OSError, match="disk full"):
        RetryPolicy(max_attempts=3, base_delay=0.001).call(always, sleep=lambda _: None)


def test_retry_policy_does_not_retry_unlisted_exceptions():
    calls = []

    def typed():
        calls.append(1)
        raise ValueError("not an OSError")

    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=5).call(typed, sleep=lambda _: None)
    assert len(calls) == 1


def test_retry_delays_are_bounded_jittered_and_seeded():
    policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=0.5, jitter=0.5, seed=3)
    first, second = list(policy.delays()), list(policy.delays())
    assert first == second  # same seed, same schedule
    assert len(first) == 5
    assert all(0.1 <= delay <= 0.5 for delay in first)
    assert first[0] < first[-1]  # it does back off


def test_retry_policy_rejects_nonsense():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)


# ----------------------------------------------------- queue hardening: journal
RECORD = {"cell_id": "cell-a", "status": "ok", "value": 1}


def test_torn_journal_line_is_rolled_back_and_retried_cleanly(tmp_path):
    path = tmp_path / "w.jsonl"
    with CellJournal(path) as journal:
        journal.append(RECORD)
        with inject(plan(FaultRule(site="queue.journal.append", action="torn"))):
            with pytest.raises(OSError):
                journal.append({"cell_id": "cell-b", "status": "ok"})
        journal.append({"cell_id": "cell-b", "status": "ok", "retried": True})
    records, skipped = read_journal(path)
    assert [r["cell_id"] for r in records] == ["cell-a", "cell-b"]
    assert records[1]["retried"] is True
    assert skipped == 0


def test_fsync_fault_keeps_the_journal_line_boundary(tmp_path):
    path = tmp_path / "w.jsonl"
    with CellJournal(path) as journal:
        with inject(plan(FaultRule(site="queue.journal.fsync"))):
            with pytest.raises(OSError):
                journal.append(RECORD)
        journal.append({"cell_id": "cell-b", "status": "ok"})
    records, skipped = read_journal(path)
    # The torn first line may or may not survive its rollback, but the
    # retried record must parse on its own line either way.
    assert records[-1]["cell_id"] == "cell-b"
    assert all("\n" not in json.dumps(r) for r in records)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    cut=st.integers(min_value=0, max_value=400),
    garbage=st.binary(max_size=40),
    n_records=st.integers(min_value=0, max_value=5),
)
def test_read_journal_recovers_complete_records_under_any_truncation(
    tmp_path, cut, garbage, n_records
):
    """Property: byte-level corruption costs at most the lines it touches."""
    path = tmp_path / f"j-{cut}-{len(garbage)}-{n_records}.jsonl"
    records = [{"cell_id": f"cell-{i}", "status": "ok", "i": i} for i in range(n_records)]
    with CellJournal(path) as journal:
        for record in records:
            journal.append(record)
    data = path.read_bytes() if path.exists() else b""
    cut = min(cut, len(data))
    path.write_bytes(data[:cut] + garbage)

    recovered, _skipped = read_journal(path)  # must never raise
    survivors = []
    offset = 0
    for record in records:
        offset = data.index(b"\n", offset) + 1
        if offset <= cut:
            survivors.append(record["cell_id"])
    recovered_ids = [r["cell_id"] for r in recovered]
    # Every record whose full line precedes the cut is recovered, in order
    # (garbage may coincidentally add lines, never remove these).
    assert [i for i in recovered_ids if i in survivors] == survivors


# ------------------------------------------------- queue hardening: the worker
def small_spec(cells=2):
    workloads = [
        {"kind": "churn", "requests": 60, "target_live": 12},
        {"kind": "grow_shrink", "requests": 50},
    ][: max(1, cells)]
    return CampaignSpec.from_dict(
        {
            "name": "faulty",
            "seed": 11,
            "workloads": workloads,
            "allocators": ["first_fit"],
            "costs": ["linear"],
        }
    )


FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.005, seed=0)


def test_worker_retries_through_transient_claim_faults(tmp_path):
    directory = tmp_path / "q"
    enqueue_campaign(small_spec(), directory)
    with inject(plan(FaultRule(site="queue.lease.claim", times=2))):
        assert work_queue(directory, token="w1", retry=FAST_RETRY) == 2
    merged = merge_queue(directory)
    assert merged.records == 2 and not merged.pending


def test_worker_that_cannot_journal_releases_the_cell_and_stops(tmp_path):
    directory = tmp_path / "q"
    enqueue_campaign(small_spec(), directory)
    sink = MemorySink()
    telemetry = Telemetry(enabled=True, sink=sink)
    with use_telemetry(telemetry):
        # Every journal append fails, forever: the worker must give each
        # cell back and stop after MAX_CONSECUTIVE_WORKER_ERRORS strikes.
        with inject(plan(FaultRule(site="queue.journal.append", times=None))):
            assert work_queue(directory, token="w1", retry=FAST_RETRY) == 0
    assert os.listdir(os.path.join(directory, "leases")) == []  # all released
    errors = [
        e for e in sink.events if e["ev"] == "event" and e["name"] == "queue.worker_error"
    ]
    assert errors and all(e["attrs"]["stage"] == "journal" for e in errors)
    # The queue is not poisoned: a healthy worker drains everything.
    assert work_queue(directory, token="w2") == 2
    merged = merge_queue(directory)
    assert merged.records == 2 and not merged.pending


def test_heartbeat_refreshes_the_lease_mtime(tmp_path):
    directory = tmp_path / "q"
    enqueue_campaign(small_spec(1), directory)
    claimed = claim_cell(directory, "w1")
    assert claimed is not None
    cell_name, _ = claimed
    lease = os.path.join(directory, "leases", f"{cell_name}.lease")
    stale = time.time() - 1000
    os.utime(lease, (stale, stale))
    heartbeat = _LeaseHeartbeat(lease, interval=0.05).start()
    try:
        deadline = time.time() + 5.0
        while os.stat(lease).st_mtime < stale + 500 and time.time() < deadline:
            time.sleep(0.02)
    finally:
        heartbeat.stop()
    assert time.time() - os.stat(lease).st_mtime < 60
    release_lease(directory, cell_name)


def test_lease_expiry_tolerates_clock_skew_within_the_window(tmp_path):
    directory = tmp_path / "q"
    enqueue_campaign(small_spec(1), directory)
    cell_name, _ = claim_cell(directory, "owner", lease_ttl=60)
    lease = os.path.join(directory, "leases", f"{cell_name}.lease")
    # Aged past the TTL but within the skew tolerance: still the owner's.
    aged = time.time() - 62
    os.utime(lease, (aged, aged))
    assert claim_cell(directory, "thief", lease_ttl=60, skew_tolerance=5.0) is None
    # Aged past TTL + tolerance: stolen.
    aged = time.time() - 70
    os.utime(lease, (aged, aged))
    stolen = claim_cell(directory, "thief", lease_ttl=60, skew_tolerance=5.0)
    assert stolen is not None and stolen[0] == cell_name


def test_skewed_clock_is_what_lease_ages_are_measured_with(tmp_path):
    directory = tmp_path / "q"
    enqueue_campaign(small_spec(1), directory)
    cell_name, _ = claim_cell(directory, "owner", lease_ttl=60)
    try:
        # A fresh lease looks ancient to a worker whose clock runs fast.
        get_clock().skew(1000.0)
        stolen = claim_cell(directory, "fast-clock", lease_ttl=60, skew_tolerance=5.0)
        assert stolen is not None and stolen[0] == cell_name
    finally:
        deactivate_faults()


def test_crash_between_journal_and_dequeue_never_duplicates_records(tmp_path):
    """The at-least-once + dedup contract under the worst-case cut."""
    directory = tmp_path / "q"
    spec = small_spec()
    enqueue_campaign(spec, directory)
    crash = plan(FaultRule(site="queue.dequeue", action="crash"))
    process = multiprocessing.get_context().Process(
        target=_crashing_worker, args=(str(directory), crash.to_dict())
    )
    process.start()
    process.join()
    assert process.exitcode == CRASH_EXIT_CODE
    # The dead worker journaled its record but never dequeued the cell.
    journals = [
        read_journal(os.path.join(journal_dir(directory), name))[0]
        for name in os.listdir(journal_dir(directory))
    ]
    assert sum(len(records) for records in journals) == 1
    for name in os.listdir(os.path.join(directory, "leases")):
        release_lease(directory, name[: -len(".lease")])  # no TTL waits in tests
    assert work_queue(directory, token="w2") >= 1
    merged = merge_queue(directory)
    assert merged.records == 2 and not merged.pending
    cell_ids = [record["cell_id"] for record in merged.document["records"]]
    assert len(cell_ids) == len(set(cell_ids)) == 2


def _crashing_worker(directory, plan_dict):
    activate_plan(FaultPlan.from_dict(plan_dict))
    work_queue(directory, token="w1")


def test_cell_timeout_turns_overruns_into_typed_error_records(tmp_path):
    directory = tmp_path / "q"
    enqueue_campaign(small_spec(1), directory)
    # A timeout so small every real cell overruns: the watchdog must
    # terminate the child and journal a typed record, not hang or die.
    executed = work_queue(directory, token="w1", cell_timeout=0.0001)
    assert executed == 1
    merged = merge_queue(directory)
    record = merged.document["records"][0]
    assert record["status"] == "error"
    assert record["error_kind"] in ("worker_timeout", "worker_crash")
    assert "timeout" in record["error"] or "died" in record["error"]


# ------------------------------------------------------- artifact write faults
def test_atomic_write_faults_leave_no_tmp_and_keep_the_old_artifact(tmp_path):
    target = tmp_path / "results.json"
    atomic_write(target, lambda handle: handle.write('{"version": 1}'))
    for site in ("artifact.write.body", "artifact.write.fsync", "artifact.write.replace"):
        with inject(plan(FaultRule(site=site))):
            with pytest.raises(OSError):
                atomic_write(target, lambda handle: handle.write('{"version": 2}'))
        assert json.loads(target.read_text()) == {"version": 1}
        assert list(tmp_path.glob("*.tmp")) == []
    atomic_write(target, lambda handle: handle.write('{"version": 2}'))
    assert json.loads(target.read_text()) == {"version": 2}


# ------------------------------------------------------------------ obs report
def test_obs_report_renders_the_fault_section():
    events = [
        {"ev": "event", "name": "fault.injected", "t": 1.0,
         "attrs": {"site": "queue.dequeue", "action": "crash", "pid": 41}},
        {"ev": "event", "name": "fault.injected", "t": 2.0,
         "attrs": {"site": "queue.dequeue", "action": "crash", "pid": 42}},
        {"ev": "event", "name": "queue.worker_error", "t": 3.0,
         "attrs": {"worker": "w-9", "stage": "journal", "error": "injected"}},
        {"ev": "counter", "name": "faults.retries", "t": 4.0, "value": 3},
        {"ev": "counter", "name": "faults.backoff_seconds", "t": 4.0, "value": 0.25},
    ]
    text = obs_report(events)
    assert "fault injection: 2 fault(s) fired" in text
    assert "queue.dequeue crash x2 (pid 41, 42)" in text
    assert "worker w-9: gave up at journal x1" in text
    assert "3 retries" in text


def test_obs_report_without_faults_has_no_fault_section():
    assert "fault injection" not in obs_report(
        [{"ev": "counter", "name": "engine.requests", "t": 1.0, "value": 5}]
    )


# ------------------------------------------------------------------------ CLI
def test_cli_chaos_sites_lists_every_site(capsys):
    assert main(["chaos", "sites"]) == 0
    out = capsys.readouterr().out
    for site in SITES:
        assert site in out


def test_cli_chaos_rejects_bad_input(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(
        json.dumps(small_spec().to_dict()), encoding="utf-8"
    )
    assert main(["chaos"]) == 2
    assert "choose a subcommand" in capsys.readouterr().err
    assert main(["chaos", "sweep", str(tmp_path / "nope.json")]) == 2
    assert "cannot load spec" in capsys.readouterr().err
    assert main(["chaos", "sweep", str(spec_path)]) == 2
    assert "nothing to run" in capsys.readouterr().err
    assert main(["chaos", "sweep", str(spec_path), "--sites", "no.such.site", "--seeds", "1"]) == 2
    assert "no fault site matches" in capsys.readouterr().err
    bad_plan = tmp_path / "plan.json"
    bad_plan.write_text('{"rules": [{"site": "x", "action": "explode"}]}', encoding="utf-8")
    assert main(["chaos", "sweep", str(spec_path), "--faults", str(bad_plan)]) == 2
    assert "unknown fault action" in capsys.readouterr().err


def test_cli_enqueue_onto_a_file_fails_cleanly(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(small_spec().to_dict()), encoding="utf-8")
    blocker = tmp_path / "blocker"
    blocker.write_text("I am a file", encoding="utf-8")
    assert main(["sweep", "enqueue", str(spec_path), str(blocker)]) == 2
    err = capsys.readouterr().err
    assert "repro sweep enqueue:" in err and str(blocker) in err
    assert main(["sweep", "work", str(blocker)]) == 2
    assert "not a campaign queue directory" in capsys.readouterr().err
    assert main(["sweep", "merge", str(blocker)]) == 2
    assert "not a campaign queue directory" in capsys.readouterr().err
