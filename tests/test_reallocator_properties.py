"""Property-based tests: the paper's invariants under arbitrary request mixes.

Hypothesis drives random (but reproducible) insert/delete sequences against
each reallocator variant and checks, after every request, the structural
invariants (Invariant 2.2–2.4), the footprint bound, and disjointness of all
placements.  These are the strongest correctness tests in the suite.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    CheckpointedReallocator,
    CostObliviousReallocator,
    DeamortizedReallocator,
    check_invariants,
)

# A request script is a list of (op_choice, size) pairs; op_choice picks
# insert vs delete (deletes are ignored when nothing is live).
request_scripts = st.lists(
    st.tuples(st.integers(0, 99), st.integers(1, 96)),
    min_size=1,
    max_size=220,
)


def _run_script(realloc, script, delete_bias=45, check_every=1):
    live = []
    next_id = 0
    for step, (op_choice, size) in enumerate(script):
        if live and op_choice < delete_bias:
            victim = live.pop(op_choice % len(live))
            realloc.delete(victim)
        else:
            next_id += 1
            realloc.insert(next_id, size)
            live.append(next_id)
        if step % check_every == 0:
            check_invariants(realloc)
            if realloc.volume > 0:
                assert realloc.bounded_space() <= realloc.space_bound(realloc.volume) + (
                    realloc.delta + realloc.log_volume()
                    if getattr(realloc, "flush_in_progress", False)
                    else 0
                ) + 1e-9
    return live


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=request_scripts)
def test_amortized_variant_preserves_invariants(script):
    realloc = CostObliviousReallocator(epsilon=0.5)
    live = _run_script(realloc, script)
    assert realloc.num_objects == len(live)
    assert realloc.stats.max_footprint_ratio <= 1.5 + 1e-9


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=request_scripts)
def test_checkpointed_variant_preserves_invariants(script):
    realloc = CheckpointedReallocator(epsilon=0.5)
    _run_script(realloc, script)
    assert realloc.checkpoints.violations == 0
    assert realloc.stats.max_footprint_ratio <= 1.5 + 1e-9


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=request_scripts)
def test_deamortized_variant_preserves_invariants(script):
    realloc = DeamortizedReallocator(epsilon=0.5)
    live = _run_script(realloc, script)
    realloc.finish_pending_work()
    check_invariants(realloc)
    assert realloc.num_objects == len(live)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=request_scripts, epsilon=st.sampled_from([0.5, 0.25, 0.125]))
def test_footprint_bound_scales_with_epsilon(script, epsilon):
    realloc = CostObliviousReallocator(epsilon=epsilon)
    _run_script(realloc, script)
    if realloc.volume > 0:
        assert realloc.reserved_space <= (1 + epsilon) * realloc.volume + 1e-9


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=request_scripts)
def test_deamortized_worst_case_bound(script):
    """Lemma 3.6: no request reallocates more than (4/eps') w + Delta volume."""
    realloc = DeamortizedReallocator(epsilon=0.5)
    live = []
    next_id = 0
    for op_choice, size in script:
        if live and op_choice < 45:
            victim = live.pop(op_choice % len(live))
            record = realloc.delete(victim)
            request_size = record.size
        else:
            next_id += 1
            record = realloc.insert(next_id, size)
            request_size = size
            live.append(next_id)
        bound = realloc.work_factor * request_size + max(realloc.delta, 1)
        assert record.moved_volume <= bound + 1e-9


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=request_scripts)
def test_all_variants_agree_on_the_live_set(script):
    """Different variants must end with identical live objects and volumes."""
    variants = [
        CostObliviousReallocator(epsilon=0.25),
        CheckpointedReallocator(epsilon=0.25),
        DeamortizedReallocator(epsilon=0.25),
    ]
    for realloc in variants:
        live = _run_script(realloc, script, check_every=10**9)
        if hasattr(realloc, "finish_pending_work"):
            realloc.finish_pending_work()
    volumes = {realloc.volume for realloc in variants}
    counts = {realloc.num_objects for realloc in variants}
    assert len(volumes) == 1
    assert len(counts) == 1
