"""Shared fixtures and helpers for the test suite."""

import random

import pytest

from repro.core import (
    CheckpointedReallocator,
    CostObliviousReallocator,
    DeamortizedReallocator,
)


REALLOCATOR_CLASSES = [
    CostObliviousReallocator,
    CheckpointedReallocator,
    DeamortizedReallocator,
]


@pytest.fixture(params=REALLOCATOR_CLASSES, ids=lambda cls: cls.name)
def reallocator_class(request):
    """Parametrize a test over the three paper variants."""
    return request.param


def random_churn(allocator, steps, seed=0, max_size=64, delete_probability=0.45):
    """Drive ``allocator`` with a random insert/delete mix; returns live dict."""
    rng = random.Random(seed)
    live = {}
    next_id = 0
    for _ in range(steps):
        if live and rng.random() < delete_probability:
            name = rng.choice(list(live))
            allocator.delete(name)
            del live[name]
        else:
            next_id += 1
            size = rng.randint(1, max_size)
            allocator.insert(next_id, size)
            live[next_id] = size
    return live
