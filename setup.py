"""Setuptools shim so editable installs work without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` succeeds on minimal, offline environments whose
setuptools cannot build PEP 517 wheels.
"""

from setuptools import setup

setup()
