"""Packaging for the reproduction harness.

Metadata lives here (there is no ``pyproject.toml``) so the project installs
on minimal, offline environments whose setuptools cannot build PEP 517
wheels.  ``pip install -e .`` exposes the ``repro`` console script alongside
``python -m repro``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-cost-oblivious-reallocation",
    version="0.2.0",
    description=(
        "Reproduction of cost-oblivious storage reallocation (PODS 2014): "
        "reallocators, experiment harness, and campaign sweep engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ]
    },
)
