"""Walk through the data structure of Section 2, reproducing Figures 2 and 3.

The script builds a small instance, prints the size-class layout (payload and
buffer segments — the paper's Figure 2), then triggers a buffer flush and
prints every move it performs together with the layout afterwards (Figure 3).

Run with::

    python examples/flush_walkthrough.py
"""

from repro import CostObliviousReallocator, render_layout


def main() -> None:
    realloc = CostObliviousReallocator(epsilon=0.5, trace=True)

    print("=== building the Figure 2 layout ===")
    for index, size in enumerate([6, 6, 3, 3, 12, 12, 2, 2]):
        realloc.insert(f"o{index}", size)
    print(render_layout(realloc))
    print()

    print("=== a few updates accumulate in the buffers ===")
    realloc.delete("o1")
    realloc.delete("o6")
    realloc.insert("a", 3)
    print(render_layout(realloc))
    print()

    print("=== inserting until a buffer flush is triggered (Figure 3) ===")
    flush_request = None
    step = 0
    while flush_request is None:
        record = realloc.insert(f"fill{step}", 3)
        step += 1
        if record.flush is not None:
            flush_request = record
    flush = flush_request.flush
    print(f"flush boundary class : {flush.boundary_class}")
    print(f"classes flushed      : {flush.classes_flushed}")
    print(f"objects moved        : {flush.move_count} ({flush.moved_volume} units)")
    print()
    print("moves performed by the flush:")
    for move in flush_request.moves:
        origin = str(move.source) if move.source else "(new object)"
        print(f"  {str(move.name):>8} size {move.size:>3}  {origin:>12} -> "
              f"{move.destination}   [{move.reason}]")
    print()
    print("layout after the flush — every flushed buffer is empty again "
          "(Invariant 2.4):")
    print(render_layout(realloc))


if __name__ == "__main__":
    main()
