"""One allocator, three devices: why cost obliviousness matters.

The same reallocator execution is replayed against simulated RAM, rotating
disk, and SSD devices, and simultaneously charged under each device's analytic
cost function.  A reallocator tuned for one device (logging-and-compacting
for bandwidth, the size-class-gap scheme for seeks) looks great on that device
and mediocre on another; the cost-oblivious reallocator stays within its
guarantee on all three without being told which one it is running on.

Run with::

    python examples/device_comparison.py
"""

from repro import CostObliviousReallocator
from repro.allocators import LoggingCompactingReallocator, SizeClassGapReallocator
from repro.metrics import ascii_table, run_trace
from repro.storage.devices import MainMemoryDevice, RotatingDiskDevice, SolidStateDevice
from repro.workloads import BimodalSizes, churn_trace


def main() -> None:
    trace = churn_trace(6_000, BimodalSizes(4, 512, 0.05), target_live=250, seed=17)
    devices = [MainMemoryDevice(), RotatingDiskDevice(), SolidStateDevice()]
    cost_functions = [device.cost_function() for device in devices]

    rows = []
    for factory in (
        lambda: LoggingCompactingReallocator(),
        lambda: SizeClassGapReallocator(),
        lambda: CostObliviousReallocator(epsilon=0.25),
    ):
        allocator = factory()
        metrics = run_trace(allocator, trace, cost_functions=cost_functions)
        rows.append(
            [
                allocator.describe(),
                f"{metrics.max_footprint_ratio:.2f}",
                *(f"{metrics.cost_ratios[cost.name]:.2f}" for cost in cost_functions),
            ]
        )

    print(
        ascii_table(
            ["allocator", "max footprint/V"] + [f"cost ratio ({d.name})" for d in devices],
            rows,
            title="Same workload, charged per device after the fact",
        )
    )
    print()
    print(
        "The cost-oblivious reallocator never sees the device model, yet its "
        "ratio stays bounded in every column; the tuned baselines trade one "
        "column for another (and the non-moving ones would trade footprint instead)."
    )


if __name__ == "__main__":
    main()
