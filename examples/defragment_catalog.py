"""Sort a fragmented extent catalog in place with (1+eps)V + Delta space.

A year of allocations and deletions has left a table's segment files
scattered over the disk in arrival order.  We want them physically sorted by
key range (so range scans become sequential) without provisioning a second
copy of the data: the Theorem 2.7 defragmenter does it with only an
``eps``-fraction of slack plus one largest-object's worth of scratch space,
and with a move budget that is near-optimal no matter how the device charges
for moves.

Run with::

    python examples/defragment_catalog.py
"""

import random

from repro import ConstantCost, Defragmenter, LinearCost, RotatingDiskCost


def main() -> None:
    rng = random.Random(42)

    # The catalog: segment-i should end up in position i, but the current
    # physical layout is a shuffled, hole-riddled mess inside (1+eps)V space.
    epsilon = 0.25
    segments = [(f"segment-{i:04d}", rng.randint(8, 256)) for i in range(400)]
    volume = sum(size for _, size in segments)
    slack = int(epsilon * volume)

    order = list(segments)
    rng.shuffle(order)
    allocation = {}
    cursor = 0
    for name, size in order:
        hole = min(slack, rng.randint(0, 32))
        cursor += hole
        slack -= hole
        allocation[name] = cursor
        cursor += size

    delta = max(size for _, size in segments)
    print(f"segments        : {len(segments)}")
    print(f"total volume V  : {volume}")
    print(f"largest Delta   : {delta}")
    print(f"initial footprint: {cursor}  (allowed: {(1 + epsilon) * volume:.0f})")

    defrag = Defragmenter(epsilon=epsilon, key=lambda name: name)
    result = defrag.defragment(segments, allocation)

    ordered = sorted(result.layout)
    addresses = [result.layout[name] for name in ordered]
    assert addresses == sorted(addresses), "catalog should be physically sorted"

    print()
    print(f"peak space used : {result.peak_footprint}  "
          f"(bound (1+eps)V + Delta = {(1 + epsilon) * volume + delta:.0f})")
    print(f"moves per object: {result.moves_per_object:.2f}")
    for cost in (LinearCost(), ConstantCost(), RotatingDiskCost()):
        print(f"move cost / allocation cost under {cost.name:>8}: "
              f"{result.cost_ratio(cost):5.2f}")
    print()
    print("first five segments after defragmentation:")
    for name in ordered[:5]:
        print(f"  {name} -> address {result.layout[name]}")


if __name__ == "__main__":
    main()
