"""Quickstart: allocate, free, and watch the footprint stay within (1+eps)V.

Run with::

    python examples/quickstart.py
"""

import random

from repro import (
    CostObliviousReallocator,
    LinearCost,
    ConstantCost,
    RotatingDiskCost,
    render_layout,
)


def main() -> None:
    # A reallocator that promises a footprint within 25% of the live volume,
    # without knowing anything about how expensive moves are.
    realloc = CostObliviousReallocator(epsilon=0.25)

    rng = random.Random(7)
    live = []
    for step in range(5_000):
        if live and rng.random() < 0.45:
            victim = live.pop(rng.randrange(len(live)))
            realloc.delete(victim)
        else:
            name = f"block-{step}"
            realloc.insert(name, rng.randint(1, 128))
            live.append(name)

    volume = realloc.volume
    print(f"live objects : {realloc.num_objects}")
    print(f"live volume  : {volume}")
    print(f"footprint    : {realloc.footprint}  (bound: {1.25 * volume:.0f})")
    print(f"worst ratio  : {realloc.stats.max_footprint_ratio:.3f}  (bound 1.25)")
    print()

    # Cost obliviousness: charge the same execution under different devices
    # after the fact.  The algorithm never saw any of these cost functions.
    for cost in (LinearCost(), ConstantCost(), RotatingDiskCost()):
        ratio = realloc.stats.cost_ratio(cost)
        print(f"reallocation/allocation cost under {cost.name:>8}: {ratio:6.2f}")
    print()

    print("current layout (one bar per size class, # = payload, o/x = buffer):")
    print(render_layout(realloc))


if __name__ == "__main__":
    main()
