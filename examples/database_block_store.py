"""A database block store on top of the checkpointed reallocator.

This is the paper's motivating scenario: a storage engine (think TokuDB's
block translation layer) allocates, rewrites, and frees variable-sized blocks
on a rotating disk.  Blocks are addressed by immutable logical names; the
reallocator is free to move them physically, the translation layer keeps the
name-to-address map, the system checkpoints that map periodically, and the
reallocator never overwrites space freed since the last checkpoint — so a
crash at any instant is recoverable.

Run with::

    python examples/database_block_store.py
"""

import random

from repro import CheckpointedReallocator, RotatingDiskCost
from repro.storage.devices import RotatingDiskDevice
from repro.workloads import database_trace


def main() -> None:
    realloc = CheckpointedReallocator(epsilon=0.25, track_recovery=True)
    disk = RotatingDiskDevice(seek_ms=8.0, units_per_ms=128.0)
    trace = database_trace(8_000, block=64, working_set=300, seed=11)
    rng = random.Random(3)

    crashes = 0
    for index, request in enumerate(trace):
        if request.is_insert:
            record = realloc.insert(request.name, request.size)
        else:
            record = realloc.delete(request.name)
        # Replay the physical writes against the simulated disk.
        for move in record.moves:
            if move.is_reallocation:
                disk.move(move.size)
            else:
                disk.write(move.size)
        # The system takes a checkpoint every few hundred requests, and every
        # now and then the machine crashes; recovery must find every block.
        if index % 250 == 249:
            realloc.checkpoint()
        if rng.random() < 0.001:
            realloc.crash_and_recover()
            crashes += 1

    volume = realloc.volume
    print(f"requests served        : {len(trace)}")
    print(f"live blocks            : {realloc.num_objects}")
    print(f"live volume            : {volume}")
    print(f"disk footprint         : {realloc.footprint}  (bound {1.25 * volume:.0f})")
    print(f"flushes / checkpoints  : {realloc.stats.flushes} / {realloc.stats.checkpoints}")
    print(f"max checkpoints per op : {realloc.stats.max_request_checkpoints}")
    print(f"crashes survived       : {crashes}")
    print(f"durability violations  : {realloc.checkpoints.violations}")
    print()
    charged = realloc.stats.reallocation_cost(RotatingDiskCost())
    print(f"simulated disk time      : {disk.stats.elapsed_ms:12.1f} ms")
    print(f"charged reallocation cost: {charged:12.1f} ms-equivalent "
          "(the allocator never saw the disk model)")


if __name__ == "__main__":
    main()
